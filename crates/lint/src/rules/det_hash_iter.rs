//! `det-hash-iter`: iteration over `HashMap`/`HashSet` in deterministic
//! code.
//!
//! The repo's load-bearing guarantee — byte-identical rendered output at
//! any thread count and across processes — has been broken twice by the
//! same bug class: code that iterates a hash map in an order-sensitive
//! context (PR 2: `apply_churn` drew from a shared RNG per iterated
//! device; PR 4: canonical set ordering silently tie-broke by hash-map
//! iteration order).  `std` hash maps randomize their seed per process,
//! so *any* observable dependence on their iteration order is a
//! cross-process nondeterminism.
//!
//! The rule tracks names declared with a hash-map/set type in the same
//! file — `let m: HashMap<…>`, `m: HashMap<…>` struct fields and fn
//! params, `let m = HashMap::new()` — and flags iteration over them:
//! `for … in &m`, and calls to the ordered-stream methods (`iter`,
//! `iter_mut`, `into_iter`, `keys`, `into_keys`, `values`, `values_mut`,
//! `into_values`, `drain`).
//!
//! Sites that are provably order-insensitive (results re-sorted, reduced
//! commutatively, or written into a dense table) carry an explicit
//! `// lint:allow(det-hash-iter): <why>`; everything else should use
//! `BTreeMap`/`BTreeSet` or sort before iterating.

use super::{Rule, Violation};
use crate::source::SourceFile;
use crate::tokenizer::{Token, TokenKind};
use std::collections::BTreeSet;

/// The rule (see the module docs).
pub struct DetHashIter;

const NAME: &str = "det-hash-iter";

/// Hash container type names whose declared bindings get tracked.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that stream a hash container in iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

impl Rule for DetHashIter {
    fn name(&self) -> &'static str {
        NAME
    }

    fn summary(&self) -> &'static str {
        "iteration over HashMap/HashSet (seed-randomized order) in deterministic code"
    }

    fn check(&self, file: &SourceFile) -> Vec<Violation> {
        let tokens = &file.tokens;
        let tracked = tracked_names(tokens);
        if tracked.is_empty() {
            return Vec::new();
        }
        let mut violations = Vec::new();
        flag_iter_methods(file, tokens, &tracked, &mut violations);
        flag_for_loops(file, tokens, &tracked, &mut violations);
        violations.sort();
        violations.dedup();
        violations
    }
}

/// Names declared with a hash-map/set type in this file: annotated
/// bindings/fields/params (`name: HashMap<…>`) and constructor
/// assignments (`let name = HashMap::new()`).
fn tracked_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || !HASH_TYPES.contains(&token.text.as_str()) {
            continue;
        }
        // Walk back over the path prefix (`std::collections::`) and
        // reference/mutability noise to the token that introduced the type.
        let mut j = i;
        while j > 0 {
            let prev = &tokens[j - 1];
            let is_path =
                prev.is_punct("::") || prev.is_ident("std") || prev.is_ident("collections");
            let is_ref =
                prev.is_punct("&") || prev.is_ident("mut") || prev.kind == TokenKind::Lifetime;
            if is_path || is_ref {
                j -= 1;
            } else {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        // `name : HashMap<…>` — annotation on a binding, field or param.
        if tokens[j - 1].is_punct(":") && j >= 2 && tokens[j - 2].kind == TokenKind::Ident {
            tracked.insert(tokens[j - 2].text.clone());
            continue;
        }
        // `let [mut] name = HashMap::…(…)` — constructor assignment.
        if tokens[j - 1].is_punct("=") && j >= 3 {
            let mut k = j - 2;
            if tokens[k].kind != TokenKind::Ident {
                continue;
            }
            let name = k;
            if tokens[k - 1].is_ident("mut") && k >= 2 {
                k -= 1;
            }
            if k >= 1 && tokens[k - 1].is_ident("let") {
                tracked.insert(tokens[name].text.clone());
            }
        }
    }
    tracked
}

/// Flag `tracked.method(` for every ordered-stream method.
fn flag_iter_methods(
    file: &SourceFile,
    tokens: &[Token],
    tracked: &BTreeSet<String>,
    violations: &mut Vec<Violation>,
) {
    for window in tokens.windows(4) {
        let [name, dot, method, open] = window else {
            continue;
        };
        if name.kind == TokenKind::Ident
            && tracked.contains(&name.text)
            && dot.is_punct(".")
            && method.kind == TokenKind::Ident
            && ITER_METHODS.contains(&method.text.as_str())
            && open.is_punct("(")
        {
            violations.push(Violation {
                file: file.rel_path.clone(),
                line: method.line,
                rule: NAME,
                message: format!(
                    "`{}.{}()` iterates a hash container in seed-randomized order",
                    name.text, method.text
                ),
            });
        }
    }
}

/// Flag `for … in [&[mut]] [path.]tracked {`.
fn flag_for_loops(
    file: &SourceFile,
    tokens: &[Token],
    tracked: &BTreeSet<String>,
    violations: &mut Vec<Violation>,
) {
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("for") {
            i += 1;
            continue;
        }
        // `for<'a>` (HRTB) and `impl … for Type` have no loop body; a loop
        // header always contains `in` before its `{` at bracket depth 0.
        let Some(in_idx) = find_loop_in(tokens, i) else {
            i += 1;
            continue;
        };
        let Some(body_idx) = find_body_brace(tokens, in_idx + 1) else {
            i += 1;
            continue;
        };
        let expr = &tokens[in_idx + 1..body_idx];
        if let Some(name) = bare_tracked_expr(expr, tracked) {
            violations.push(Violation {
                file: file.rel_path.clone(),
                line: tokens[i].line,
                rule: NAME,
                message: format!(
                    "`for … in {name}` iterates a hash container in seed-randomized order"
                ),
            });
        }
        i = body_idx + 1;
    }
}

/// The index of the `in` keyword of a `for` loop header starting at
/// `for_idx`, if this `for` is a loop.
fn find_loop_in(tokens: &[Token], for_idx: usize) -> Option<usize> {
    if tokens.get(for_idx + 1).is_some_and(|t| t.is_punct("<")) {
        return None; // `for<'a>` bound
    }
    let mut depth = 0i32;
    for (j, token) in tokens.iter().enumerate().skip(for_idx + 1) {
        match token.text.as_str() {
            "(" | "[" if token.kind == TokenKind::Punct => depth += 1,
            ")" | "]" if token.kind == TokenKind::Punct => depth -= 1,
            "{" | ";" if token.kind == TokenKind::Punct && depth == 0 => return None,
            "in" if token.kind == TokenKind::Ident && depth == 0 => return Some(j),
            _ => {}
        }
    }
    None
}

/// The index of the `{` opening the loop body, scanning from `start`.
fn find_body_brace(tokens: &[Token], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, token) in tokens.iter().enumerate().skip(start) {
        if token.kind != TokenKind::Punct {
            continue;
        }
        match token.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(j),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// If the loop-header expression is a bare (possibly referenced, possibly
/// field-projected) tracked name, return that name.  Method-call headers
/// (`map.keys()`) end in `)` and are left to [`flag_iter_methods`].
fn bare_tracked_expr(expr: &[Token], tracked: &BTreeSet<String>) -> Option<String> {
    let last = expr.last()?;
    if last.kind != TokenKind::Ident || !tracked.contains(&last.text) {
        return None;
    }
    // Everything before the final name must be reference/path shape:
    // `&`, `mut`, idents and `.`/`::` separators — no calls, no indexing.
    let shape_ok = expr[..expr.len() - 1].iter().all(|t| {
        t.is_punct("&")
            || t.is_punct(".")
            || t.is_punct("::")
            || t.kind == TokenKind::Ident
            || t.kind == TokenKind::Lifetime
    });
    shape_ok.then(|| last.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Violation> {
        DetHashIter.check(&SourceFile::parse("crates/netsim/src/x.rs", src, &[NAME]))
    }

    #[test]
    fn flags_for_loop_over_hash_map_field() {
        let src = "struct S { devices: HashMap<u32, Device> }\n\
                   impl S { fn f(&mut self, rng: &mut Rng) {\n\
                   for (_, d) in &mut self.devices { d.step(rng.next()); }\n\
                   } }";
        let violations = check(src);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].line, 3);
        assert!(violations[0].message.contains("devices"));
    }

    #[test]
    fn flags_ordered_stream_methods_on_let_bindings() {
        let src = "fn f() { let mut seen = HashMap::new();\n\
                   for k in seen.keys() { use_it(k); }\n\
                   let v: Vec<_> = seen.values().collect();\n\
                   seen.drain(); }";
        let violations = check(src);
        assert_eq!(violations.len(), 3);
        assert!(violations.iter().all(|v| v.rule == NAME));
    }

    #[test]
    fn flags_annotated_locals_and_params() {
        let src = "fn f(index: &HashSet<u32>) { for x in index { touch(x); } }";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn ignores_btree_maps_and_untracked_names() {
        let src = "fn f(m: &BTreeMap<u32, u32>, v: Vec<u32>) {\n\
                   for x in m { touch(x); }\n\
                   for y in v.iter() { touch(y); }\n\
                   let lookup = HashMap::new(); lookup.get(&1); lookup.entry(2); }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn ignores_impl_for_and_hrtb() {
        let src = "impl<T> Render for HashMap<T, u32> {}\n\
                   fn g<F: for<'a> Fn(&'a u32)>(f: F) {}";
        assert!(check(src).is_empty());
    }

    #[test]
    fn into_values_on_a_tracked_map_is_flagged() {
        let src = "fn f() { let mut map: HashMap<usize, Vec<usize>> = HashMap::new();\n\
                   let groups: Vec<_> = map.into_values().collect(); }";
        assert_eq!(check(src).len(), 1);
    }
}
