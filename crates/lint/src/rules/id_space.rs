//! `id-space`: address-keyed containers on the hot path.
//!
//! PRs 4–5 moved the resolution pipeline onto dense interned ids
//! (`AddrId`/`CompactAliasSet`/`ObservationStore` columns); materialised
//! `BTreeSet<IpAddr>` and `IpAddr`-keyed maps are only supposed to exist
//! at the report/rendering boundary.  PR 8 finished that migration for
//! the pipeline crates, so inside `core`, `resolve`, `store` and `scan`
//! the rule is now a **hard failure** — no baseline entry grandfathers a
//! new address-keyed container there; `lint:allow(id-space): <why>` with
//! a documented reason is the only escape hatch.  The legacy `midar`
//! baselines keep ratchet treatment (`lint-baseline.json` counts may only
//! fall).
//!
//! Since PR 8 the rule is workspace-aware (v2): phase 1's
//! [`WorkspaceIndex`] resolves `use … as` renames, `pub use` re-exports
//! and `type` aliases, so `type AddrSet = BTreeSet<IpAddr>` defined in
//! *any* crate taints every use of `AddrSet` (or any re-export of it)
//! inside the scoped crates.  The per-expression v1 window — flag
//! `C<IpAddr, …>` for the four std containers — could be dodged by a
//! one-line rename; v2 cannot.

use super::{CrossRule, Violation};
use crate::index::WorkspaceIndex;
use crate::source::SourceFile;
use crate::tokenizer::TokenKind;

/// The rule (see the module docs).
pub struct IdSpace;

const NAME: &str = "id-space";

/// Crates where any violation is a hard failure (the migration is done).
const HARD_CRATES: &[&str] = &["core", "resolve", "store", "scan"];

/// Crates where violations stay ratcheted by `lint-baseline.json` (legacy
/// baselines not worth porting).
const RATCHET_CRATES: &[&str] = &["midar"];

/// Whether a violation in `crate_name` is a hard failure (not
/// grandfatherable by the baseline).
pub fn is_hard(crate_name: &str) -> bool {
    HARD_CRATES.contains(&crate_name)
}

/// Whether the rule applies to `crate_name` at all.
fn in_scope(crate_name: &str) -> bool {
    HARD_CRATES.contains(&crate_name) || RATCHET_CRATES.contains(&crate_name)
}

impl CrossRule for IdSpace {
    fn name(&self) -> &'static str {
        NAME
    }

    fn summary(&self) -> &'static str {
        "IpAddr-keyed containers in core/resolve/store/scan (hard) and midar (ratcheted), \
         seen through renames, re-exports and type aliases"
    }

    fn check(&self, files: &[SourceFile], index: &WorkspaceIndex) -> Vec<Violation> {
        let mut violations = Vec::new();
        for file in files {
            if !in_scope(&file.crate_name) {
                continue;
            }
            check_file(file, index, &mut violations);
        }
        violations.sort();
        violations
    }
}

fn check_file(file: &SourceFile, index: &WorkspaceIndex, violations: &mut Vec<Violation>) {
    let tokens = &file.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident {
            continue;
        }
        // `C<IpAddr, …>` for any name denoting a tracked container —
        // the v1 window, widened over import renames.
        if index.container_names.contains(&token.text)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("<"))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("IpAddr"))
        {
            violations.push(Violation {
                file: file.rel_path.clone(),
                line: token.line,
                rule: NAME,
                message: format!(
                    "`{}<IpAddr, …>` — hot-path state should stay in AddrId space",
                    token.text
                ),
            });
            continue;
        }
        // Any use of a type name that resolves to an IpAddr-keyed
        // container (the v2 alias/re-export dodge).  The definition's own
        // left-hand side is skipped: the right-hand-side window above
        // already covers in-scope definitions, and out-of-scope
        // definitions are only debt where they are *used*.
        if let Some(origin) = index.tainted_types.get(&token.text) {
            let is_alias_lhs = i > 0
                && tokens[i - 1].is_ident("type")
                && tokens.get(i + 1).is_some_and(|t| t.is_punct("="));
            // A `… as Name` rename binds the name; the imported source
            // ident on the same line already carries the violation.
            let is_rename_target = i > 0 && tokens[i - 1].is_ident("as");
            if !is_alias_lhs && !is_rename_target {
                violations.push(Violation {
                    file: file.rel_path.clone(),
                    line: token.line,
                    rule: NAME,
                    message: format!(
                        "`{}` resolves to an IpAddr-keyed container via {origin}",
                        token.text
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::WorkspaceIndex;
    use crate::source::SourceFile;

    fn check(sources: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(path, src)| SourceFile::parse(path, src, &[NAME]))
            .collect();
        let index = WorkspaceIndex::build(&files);
        IdSpace.check(&files, &index)
    }

    #[test]
    fn flags_address_keyed_containers_in_scoped_crates() {
        let violations = check(&[(
            "crates/core/src/x.rs",
            "fn f(sets: &[BTreeSet<IpAddr>], idx: HashMap<IpAddr, usize>) {}",
        )]);
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn other_crates_and_other_keys_are_out_of_scope() {
        let out_of_scope = check(&[("crates/netsim/src/x.rs", "fn f(sets: &BTreeSet<IpAddr>) {}")]);
        assert!(out_of_scope.is_empty());
        let id_keyed = check(&[(
            "crates/core/src/x.rs",
            "fn f(sets: &BTreeSet<AddrId>, m: BTreeMap<u32, IpAddr>) {}",
        )]);
        assert!(id_keyed.is_empty());
    }

    #[test]
    fn import_renames_cannot_dodge_the_window() {
        let violations = check(&[(
            "crates/core/src/x.rs",
            "use std::collections::BTreeSet as Set;\nfn f(sets: &[Set<IpAddr>]) {}",
        )]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].line, 2);
        assert!(violations[0].message.contains("Set<IpAddr"));
    }

    #[test]
    fn type_aliases_defined_elsewhere_taint_scoped_uses() {
        let violations = check(&[
            (
                "crates/netsim/src/x.rs",
                "pub type AddrSet = std::collections::BTreeSet<IpAddr>;",
            ),
            (
                "crates/core/src/y.rs",
                "use alias_netsim::AddrSet;\nfn f(sets: &[AddrSet]) -> AddrSet { sets[0].clone() }",
            ),
        ]);
        // The import line plus two uses; the out-of-scope definition in
        // netsim is not counted.
        assert_eq!(violations.len(), 3);
        assert!(violations.iter().all(|v| v.file == "crates/core/src/y.rs"));
        assert!(violations[0].message.contains("resolves to"));
    }

    #[test]
    fn reexport_chains_are_followed() {
        let violations = check(&[
            (
                "crates/netsim/src/x.rs",
                "pub type AddrSet = BTreeSet<IpAddr>;",
            ),
            (
                "crates/midar/src/lib.rs",
                "pub use alias_netsim::AddrSet as GroupSet;",
            ),
            (
                "crates/resolve/src/y.rs",
                "fn g(group: alias_midar::GroupSet) {}",
            ),
        ]);
        // midar's re-export line (ratcheted scope) and resolve's use.
        assert_eq!(violations.len(), 2);
        assert!(violations
            .iter()
            .any(|v| v.file == "crates/resolve/src/y.rs"));
    }

    #[test]
    fn in_scope_alias_definition_is_counted_once() {
        let violations = check(&[(
            "crates/core/src/x.rs",
            "pub type AliasSet = BTreeSet<IpAddr>;",
        )]);
        assert_eq!(violations.len(), 1, "{violations:?}");
    }

    #[test]
    fn hard_and_ratchet_scopes_are_split_as_documented() {
        assert!(is_hard("core"));
        assert!(is_hard("scan"));
        assert!(!is_hard("midar"));
        assert!(!is_hard("netsim"));
        assert!(in_scope("midar"));
        assert!(!in_scope("bench"));
    }
}
