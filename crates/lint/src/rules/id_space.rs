//! `id-space`: address-keyed containers on the hot path.
//!
//! PRs 4–5 moved the resolution pipeline onto dense interned ids
//! (`AddrId`/`CompactAliasSet`/`ObservationStore` columns); materialised
//! `BTreeSet<IpAddr>` and `IpAddr`-keyed maps are only supposed to exist
//! at the report/rendering boundary.  The ROADMAP's "finish the id-space
//! migration" item is exactly the remaining set of such containers in the
//! pipeline crates — they are the memory cliff blocking the serving-layer
//! and scale-sweep arcs.
//!
//! This rule *measures* that migration: every `BTreeSet<IpAddr>`,
//! `HashSet<IpAddr>`, or `IpAddr`-keyed map inside `core`, `resolve`,
//! `store` and `scan` is a violation.  Existing sites are ratcheted in
//! `lint-baseline.json` — the count may only fall; new sites fail CI.

use super::{Rule, Violation};
use crate::source::SourceFile;
use crate::tokenizer::TokenKind;

/// The rule (see the module docs).
pub struct IdSpace;

const NAME: &str = "id-space";

/// The crates the migration applies to (directory names under `crates/`).
const SCOPED_CRATES: &[&str] = &["core", "resolve", "store", "scan"];

/// Container types that, parameterized by `IpAddr`, mark address-keyed
/// hot-path state.
const CONTAINERS: &[&str] = &["BTreeSet", "HashSet", "BTreeMap", "HashMap"];

impl Rule for IdSpace {
    fn name(&self) -> &'static str {
        NAME
    }

    fn summary(&self) -> &'static str {
        "BTreeSet<IpAddr>/IpAddr-keyed maps in core/resolve/store/scan (ratcheted)"
    }

    fn check(&self, file: &SourceFile) -> Vec<Violation> {
        if !SCOPED_CRATES.contains(&file.crate_name.as_str()) {
            return Vec::new();
        }
        let mut violations = Vec::new();
        for window in file.tokens.windows(3) {
            let [container, open, param] = window else {
                continue;
            };
            if container.kind == TokenKind::Ident
                && CONTAINERS.contains(&container.text.as_str())
                && open.is_punct("<")
                && param.is_ident("IpAddr")
            {
                violations.push(Violation {
                    file: file.rel_path.clone(),
                    line: container.line,
                    rule: NAME,
                    message: format!(
                        "`{}<IpAddr, …>` — hot-path state should stay in AddrId space",
                        container.text
                    ),
                });
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    #[test]
    fn flags_address_keyed_containers_in_scoped_crates() {
        let file = SourceFile::parse(
            "crates/core/src/x.rs",
            "fn f(sets: &[BTreeSet<IpAddr>], idx: HashMap<IpAddr, usize>) {}",
            &[NAME],
        );
        assert_eq!(IdSpace.check(&file).len(), 2);
    }

    #[test]
    fn other_crates_and_other_keys_are_out_of_scope() {
        let out_of_scope = SourceFile::parse(
            "crates/netsim/src/x.rs",
            "fn f(sets: &BTreeSet<IpAddr>) {}",
            &[NAME],
        );
        assert!(IdSpace.check(&out_of_scope).is_empty());
        let id_keyed = SourceFile::parse(
            "crates/core/src/x.rs",
            "fn f(sets: &BTreeSet<AddrId>, m: BTreeMap<u32, IpAddr>) {}",
            &[NAME],
        );
        assert!(IdSpace.check(&id_keyed).is_empty());
    }
}
