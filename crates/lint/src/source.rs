//! Scanned source files and the explicit-suppression table.
//!
//! A [`SourceFile`] is one tokenized `.rs` file plus its parsed
//! `lint:allow` comments.  Suppression is deliberately narrow and
//! auditable:
//!
//! ```text
//! // lint:allow(det-hash-iter): order-insensitive — result is sorted below
//! ```
//!
//! A trailing allow suppresses its own line; a standalone allow comment
//! suppresses its own line *and the next one* (the usual shape: the allow
//! sits right above the flagged statement).  The reason after the colon is
//! mandatory — an allow without one is itself a check failure, not a
//! silent no-op — and the rule list must name real rules.

use crate::tokenizer::{self, Comment, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One tokenized source file, ready for rules to scan.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// The workspace crate directory the file belongs to (`core`,
    /// `resolve`, …; the facade `src/` tree is crate `alias-resolution`).
    pub crate_name: String,
    /// The code tokens (comments and literals stripped/opaque).
    pub tokens: Vec<Token>,
    /// The comments, for suppression parsing.
    pub comments: Vec<Comment>,
    /// Lines covered by a `lint:allow` for each rule name.
    pub allows: BTreeMap<String, BTreeSet<u32>>,
    /// Malformed suppression comments (missing reason, unknown rule).
    pub problems: Vec<String>,
}

impl SourceFile {
    /// Tokenize `source` as `rel_path`, parsing suppression comments
    /// against the known `rule_names`.
    pub fn parse(rel_path: &str, source: &str, rule_names: &[&str]) -> SourceFile {
        let (tokens, comments) = tokenizer::tokenize(source);
        let crate_name = crate_of(rel_path);
        let mut allows: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
        let mut problems = Vec::new();
        for comment in &comments {
            parse_allow(comment, rel_path, rule_names, &mut allows, &mut problems);
        }
        SourceFile {
            rel_path: rel_path.to_owned(),
            crate_name,
            tokens,
            comments,
            allows,
            problems,
        }
    }

    /// Whether `rule` is suppressed on `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(rule)
            .is_some_and(|lines| lines.contains(&line))
    }
}

/// The crate directory name a workspace-relative path belongs to.
pub fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("").to_owned(),
        _ => "alias-resolution".to_owned(),
    }
}

/// Parse one comment for `lint:allow(rule, …): reason`, recording covered
/// lines or a problem.
fn parse_allow(
    comment: &Comment,
    rel_path: &str,
    rule_names: &[&str],
    allows: &mut BTreeMap<String, BTreeSet<u32>>,
    problems: &mut Vec<String>,
) {
    // Suppressions live in plain comments only: doc comments (`///`,
    // `//!`, `/**`, `/*!`) are rendered documentation and routinely
    // *mention* the syntax without meaning it.
    if comment.text.starts_with("///")
        || comment.text.starts_with("//!")
        || comment.text.starts_with("/**")
        || comment.text.starts_with("/*!")
    {
        return;
    }
    let Some(start) = comment.text.find("lint:allow") else {
        return;
    };
    let at = format!("{rel_path}:{}", comment.line);
    let rest = &comment.text[start + "lint:allow".len()..];
    let Some(open) = rest.find('(') else {
        problems.push(format!("{at}: lint:allow is missing its (rule) list"));
        return;
    };
    let Some(close) = rest.find(')') else {
        problems.push(format!("{at}: lint:allow has an unterminated rule list"));
        return;
    };
    let rules: Vec<&str> = rest[open + 1..close]
        .split(',')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        problems.push(format!("{at}: lint:allow names no rules"));
        return;
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        problems.push(format!(
            "{at}: lint:allow requires a reason — `lint:allow(rule): why it is sound`"
        ));
        return;
    }
    for rule in rules {
        if !rule_names.contains(&rule) {
            problems.push(format!("{at}: lint:allow names unknown rule {rule:?}"));
            continue;
        }
        let lines = allows.entry(rule.to_owned()).or_default();
        lines.insert(comment.line);
        if comment.standalone {
            lines.insert(comment.line + 1);
        }
    }
}

/// Collect every lintable source file under `root`: `crates/*/src/**/*.rs`
/// plus the facade's `src/**/*.rs`, in sorted path order (the lint's own
/// output must be as deterministic as the property it enforces).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "{} has no crates/ directory — not a workspace root",
                root.display()
            ),
        ));
    }
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        collect_rs(&member.join("src"), &mut files)?;
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

/// Recursively collect `.rs` files under `dir` (missing dirs are fine).
fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, files)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            files.push(entry);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with `/` separators.
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["det-hash-iter", "id-space"];

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let file = SourceFile::parse(
            "crates/core/src/x.rs",
            "fn f() {\n    iterate(); // lint:allow(det-hash-iter): sorted below\n}\n",
            RULES,
        );
        assert!(file.problems.is_empty());
        assert!(file.is_allowed("det-hash-iter", 2));
        assert!(!file.is_allowed("det-hash-iter", 3));
        assert!(!file.is_allowed("id-space", 2));
    }

    #[test]
    fn standalone_allow_covers_the_next_line_too() {
        let file = SourceFile::parse(
            "crates/core/src/x.rs",
            "// lint:allow(det-hash-iter, id-space): both fine here\niterate();\n",
            RULES,
        );
        assert!(file.problems.is_empty());
        assert!(file.is_allowed("det-hash-iter", 1));
        assert!(file.is_allowed("det-hash-iter", 2));
        assert!(file.is_allowed("id-space", 2));
        assert!(!file.is_allowed("det-hash-iter", 3));
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_problems() {
        let file = SourceFile::parse(
            "crates/core/src/x.rs",
            "// lint:allow(det-hash-iter)\n// lint:allow(no-such-rule): reason\n// lint:allow(): empty\n",
            RULES,
        );
        assert_eq!(file.problems.len(), 3);
        assert!(file.problems[0].contains("requires a reason"));
        assert!(file.problems[1].contains("unknown rule"));
        assert!(file.problems[2].contains("names no rules"));
        assert!(!file.is_allowed("det-hash-iter", 1));
    }

    #[test]
    fn doc_comments_never_parse_as_suppressions() {
        let file = SourceFile::parse(
            "crates/core/src/x.rs",
            "//! Mentioning lint:allow(rule): reason here is documentation.\n\
             /// So is `// lint:allow(det-hash-iter)` in an item doc.\n\
             /*! and in inner block docs */\n",
            RULES,
        );
        assert!(file.problems.is_empty());
        assert!(file.allows.is_empty());
    }

    #[test]
    fn crate_names_come_from_the_path() {
        assert_eq!(crate_of("crates/netsim/src/internet.rs"), "netsim");
        assert_eq!(crate_of("src/lib.rs"), "alias-resolution");
    }
}
