//! The rule registry and the workspace check driver.
//!
//! [`rules`] is the single list every entry point shares; the driver in
//! [`check_workspace`] walks the lintable files, runs every rule, applies
//! the explicit `lint:allow` suppressions, and compares what remains
//! against the committed baseline ratchet.

use crate::baseline::Baseline;
use crate::rules::{
    crate_hygiene::CrateHygiene, det_hash_iter::DetHashIter, det_rng::DetRng,
    det_wallclock::DetWallclock, id_space::IdSpace, Rule, Violation,
};
use crate::source::{self, SourceFile};
use std::collections::BTreeMap;
use std::path::Path;

/// Every registered rule, in report order.
pub fn rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(DetHashIter),
        Box::new(DetWallclock),
        Box::new(DetRng),
        Box::new(IdSpace),
        Box::new(CrateHygiene),
    ]
}

/// The registered rule names (what `lint:allow` may refer to).
pub fn rule_names() -> Vec<&'static str> {
    rules().iter().map(|r| r.name()).collect()
}

/// Everything one check run produced, before baseline comparison.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Violations that survived `lint:allow` suppression, sorted.
    pub violations: Vec<Violation>,
    /// Malformed suppression comments (always failures).
    pub problems: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl ScanReport {
    /// Live violation counts per `file::rule` baseline key.
    pub fn counts(&self) -> BTreeMap<String, usize> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for violation in &self.violations {
            *counts.entry(violation.key()).or_default() += 1;
        }
        counts
    }
}

/// Run every rule over every lintable file under `root`.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, String> {
    let rules = rules();
    let names = rule_names();
    let files = source::workspace_files(root).map_err(|err| err.to_string())?;
    let mut report = ScanReport::default();
    for path in files {
        let rel = source::relative(root, &path);
        let raw = std::fs::read_to_string(&path)
            .map_err(|err| format!("could not read {}: {err}", path.display()))?;
        let file = SourceFile::parse(&rel, &raw, &names);
        report.problems.extend(file.problems.iter().cloned());
        for rule in &rules {
            for violation in rule.check(&file) {
                if !file.is_allowed(violation.rule, violation.line) {
                    report.violations.push(violation);
                }
            }
        }
        report.files_scanned += 1;
    }
    report.violations.sort();
    Ok(report)
}

/// One row of the check outcome: a baseline key with its live vs
/// grandfathered counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyOutcome {
    /// The `file::rule` key.
    pub key: String,
    /// Live violations found.
    pub found: usize,
    /// Violations the baseline grandfathers.
    pub baselined: usize,
}

impl KeyOutcome {
    /// Whether the key has violations beyond its baseline.
    pub fn grew(&self) -> bool {
        self.found > self.baselined
    }

    /// Whether the key fell below its baseline (ratchet progress).
    pub fn shrank(&self) -> bool {
        self.found < self.baselined
    }
}

/// The verdict of a `--check` run.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The underlying scan.
    pub report: ScanReport,
    /// Per-key live/baselined counts, sorted by key — every key that has
    /// either live violations or a baseline entry appears exactly once.
    pub keys: Vec<KeyOutcome>,
}

impl CheckOutcome {
    /// The violations not covered by the baseline: for each grown key, the
    /// last `found - baselined` sorted violations (lines later in the file
    /// are the ones most recently added; the exact attribution does not
    /// matter — any growth fails).
    pub fn new_violations(&self) -> Vec<&Violation> {
        let mut fresh = Vec::new();
        for key in self.keys.iter().filter(|k| k.grew()) {
            let of_key: Vec<&Violation> = self
                .report
                .violations
                .iter()
                .filter(|v| v.key() == key.key)
                .collect();
            fresh.extend(of_key.into_iter().skip(key.baselined));
        }
        fresh
    }

    /// Whether the check passes: no growth, no malformed suppressions.
    pub fn is_clean(&self) -> bool {
        self.report.problems.is_empty() && self.keys.iter().all(|k| !k.grew())
    }

    /// Keys that fell below their baseline (the ratchet can be tightened).
    pub fn shrunk_keys(&self) -> Vec<&KeyOutcome> {
        self.keys.iter().filter(|k| k.shrank()).collect()
    }
}

/// Scan `root` and compare against `baseline`.
pub fn check_workspace(root: &Path, baseline: &Baseline) -> Result<CheckOutcome, String> {
    let report = scan_workspace(root)?;
    let counts = report.counts();
    let mut keys: BTreeMap<String, KeyOutcome> = BTreeMap::new();
    for (key, &found) in &counts {
        keys.insert(
            key.clone(),
            KeyOutcome {
                key: key.clone(),
                found,
                baselined: baseline.allowed(key),
            },
        );
    }
    for (key, &baselined) in baseline.entries() {
        keys.entry(key.clone()).or_insert_with(|| KeyOutcome {
            key: key.clone(),
            found: 0,
            baselined,
        });
    }
    Ok(CheckOutcome {
        report,
        keys: keys.into_values().collect(),
    })
}
