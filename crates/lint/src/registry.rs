//! The rule registry and the two-phase workspace check driver.
//!
//! Phase 1 parses every lintable file and builds the
//! [`WorkspaceIndex`]; phase 2 runs the
//! per-file [`Rule`]s and the workspace-aware [`CrossRule`]s over it.
//! The driver applies the explicit `lint:allow` suppressions, then
//! compares what remains against the committed baseline ratchet — except
//! for **hard** rules (`id-space` inside the migrated pipeline crates),
//! whose violations fail the check regardless of any baseline entry.

use crate::baseline::Baseline;
use crate::index::WorkspaceIndex;
use crate::rules::{
    crate_hygiene::CrateHygiene, det_hash_iter::DetHashIter, det_rng::DetRng,
    det_wallclock::DetWallclock, id_space, id_space::IdSpace, shard_purity::ShardPurity,
    variant_coverage::VariantCoverage, CrossRule, Rule, Violation,
};
use crate::source::{self, SourceFile};
use std::collections::BTreeMap;
use std::path::Path;

/// Every registered per-file rule, in report order.
pub fn rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(DetHashIter),
        Box::new(DetWallclock),
        Box::new(DetRng),
        Box::new(CrateHygiene),
    ]
}

/// Every registered cross-file rule (phase 2), in report order.
pub fn cross_rules() -> Vec<Box<dyn CrossRule>> {
    vec![
        Box::new(IdSpace),
        Box::new(ShardPurity),
        Box::new(VariantCoverage),
    ]
}

/// The registered rule names (what `lint:allow` may refer to).
pub fn rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = rules().iter().map(|r| r.name()).collect();
    names.extend(cross_rules().iter().map(|r| r.name()));
    names
}

/// Everything one check run produced, before baseline comparison.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Violations that survived `lint:allow` suppression, sorted.
    pub violations: Vec<Violation>,
    /// Malformed suppression comments (always failures).
    pub problems: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl ScanReport {
    /// Live violation counts per `file::rule` baseline key.
    pub fn counts(&self) -> BTreeMap<String, usize> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for violation in &self.violations {
            *counts.entry(violation.key()).or_default() += 1;
        }
        counts
    }

    /// Live violation counts per rule (for the per-rule summary table).
    pub fn counts_per_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for violation in &self.violations {
            *counts.entry(violation.rule).or_default() += 1;
        }
        counts
    }
}

/// Run every rule over every lintable file under `root`.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, String> {
    let rules = rules();
    let cross = cross_rules();
    let names = rule_names();
    let paths = source::workspace_files(root).map_err(|err| err.to_string())?;
    // Phase 1: parse everything, then index the workspace symbols.
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = source::relative(root, path);
        let raw = std::fs::read_to_string(path)
            .map_err(|err| format!("could not read {}: {err}", path.display()))?;
        files.push(SourceFile::parse(&rel, &raw, &names));
    }
    let index = WorkspaceIndex::build(&files);

    // Phase 2: per-file rules, then the workspace-aware ones.
    let mut report = ScanReport {
        files_scanned: files.len(),
        ..ScanReport::default()
    };
    let by_path: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    for file in &files {
        report.problems.extend(file.problems.iter().cloned());
        for rule in &rules {
            for violation in rule.check(file) {
                if !file.is_allowed(violation.rule, violation.line) {
                    report.violations.push(violation);
                }
            }
        }
    }
    for rule in &cross {
        for violation in rule.check(&files, &index) {
            let allowed = by_path
                .get(violation.file.as_str())
                .is_some_and(|f| f.is_allowed(violation.rule, violation.line));
            if !allowed {
                report.violations.push(violation);
            }
        }
    }
    report.violations.sort();
    Ok(report)
}

/// One row of the check outcome: a baseline key with its live vs
/// grandfathered counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyOutcome {
    /// The `file::rule` key.
    pub key: String,
    /// Live violations found.
    pub found: usize,
    /// Violations the baseline grandfathers.
    pub baselined: usize,
}

impl KeyOutcome {
    /// Whether the key has violations beyond its baseline.
    pub fn grew(&self) -> bool {
        self.found > self.baselined
    }

    /// Whether the key fell below its baseline (ratchet progress).
    pub fn shrank(&self) -> bool {
        self.found < self.baselined
    }
}

/// Whether a violation is **hard**: it fails the check even when a
/// baseline entry would cover it.  Currently: `id-space` inside the
/// migrated pipeline crates (the migration is finished; there is nothing
/// left to grandfather).
pub fn is_hard(violation: &Violation) -> bool {
    violation.rule == "id-space" && id_space::is_hard(&source::crate_of(&violation.file))
}

/// The verdict of a `--check` run.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The underlying scan.
    pub report: ScanReport,
    /// Per-key live/baselined counts, sorted by key — every key that has
    /// either live violations or a baseline entry appears exactly once.
    pub keys: Vec<KeyOutcome>,
}

impl CheckOutcome {
    /// The violations not covered by the baseline: for each grown key, the
    /// last `found - baselined` sorted violations (lines later in the file
    /// are the ones most recently added; the exact attribution does not
    /// matter — any growth fails).
    pub fn new_violations(&self) -> Vec<&Violation> {
        let mut fresh = Vec::new();
        for key in self.keys.iter().filter(|k| k.grew()) {
            let of_key: Vec<&Violation> = self
                .report
                .violations
                .iter()
                .filter(|v| v.key() == key.key)
                .collect();
            fresh.extend(of_key.into_iter().skip(key.baselined));
        }
        fresh
    }

    /// Violations of hard rules — failures regardless of the baseline.
    pub fn hard_violations(&self) -> Vec<&Violation> {
        self.report
            .violations
            .iter()
            .filter(|v| is_hard(v))
            .collect()
    }

    /// Everything that fails the check: hard violations plus growth
    /// beyond the baseline, deduplicated, in report order.
    pub fn failing_violations(&self) -> Vec<&Violation> {
        let mut failing = self.hard_violations();
        for violation in self.new_violations() {
            if !failing.iter().any(|v| std::ptr::eq(*v, violation)) {
                failing.push(violation);
            }
        }
        failing.sort();
        failing
    }

    /// Whether the check passes: no hard violations, no growth, no
    /// malformed suppressions.
    pub fn is_clean(&self) -> bool {
        self.report.problems.is_empty()
            && self.hard_violations().is_empty()
            && self.keys.iter().all(|k| !k.grew())
    }

    /// Keys that fell below their baseline (the ratchet can be tightened).
    pub fn shrunk_keys(&self) -> Vec<&KeyOutcome> {
        self.keys.iter().filter(|k| k.shrank()).collect()
    }
}

/// Scan `root` and compare against `baseline`.
pub fn check_workspace(root: &Path, baseline: &Baseline) -> Result<CheckOutcome, String> {
    let report = scan_workspace(root)?;
    let counts = report.counts();
    let mut keys: BTreeMap<String, KeyOutcome> = BTreeMap::new();
    for (key, &found) in &counts {
        keys.insert(
            key.clone(),
            KeyOutcome {
                key: key.clone(),
                found,
                baselined: baseline.allowed(key),
            },
        );
    }
    for (key, &baselined) in baseline.entries() {
        keys.entry(key.clone()).or_insert_with(|| KeyOutcome {
            key: key.clone(),
            found: 0,
            baselined,
        });
    }
    Ok(CheckOutcome {
        report,
        keys: keys.into_values().collect(),
    })
}

/// The counts a regenerated baseline may grandfather: everything except
/// hard-rule violations, which can never be baselined.
pub fn baselinable_counts(report: &ScanReport) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for violation in &report.violations {
        if !is_hard(violation) {
            *counts.entry(violation.key()).or_default() += 1;
        }
    }
    counts
}
