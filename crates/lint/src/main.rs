//! The `alias-lint` command-line entry point.
//!
//! ```text
//! alias-lint --check [--root <dir>] [--baseline <path>] [--summary <path>]
//! alias-lint --update-baseline [--root <dir>] [--baseline <path>]
//! alias-lint --list
//! ```
//!
//! `--check` (the default) scans `crates/*/src/**/*.rs` plus the facade's
//! `src/`, applies `lint:allow` suppressions, and compares the surviving
//! violations against the committed `lint-baseline.json`: any violation
//! beyond a key's baselined count — or any malformed suppression — fails
//! with exit code 1 and a per-key table.  Hard rules (`id-space` inside
//! the migrated pipeline crates) fail regardless of the baseline: since
//! PR 8 the migration is finished, so there is nothing left to
//! grandfather there.  `--summary <path>` appends a per-rule roll-up and
//! the per-key table as GitHub-flavoured markdown (pass
//! `$GITHUB_STEP_SUMMARY`).  `--update-baseline` regenerates the baseline
//! from the current scan (hard-rule violations are never written) so the
//! ratchet can be tightened after paying down debt.  Usage and I/O errors
//! exit 2.

use alias_lint::baseline::Baseline;
use alias_lint::registry::{self, CheckOutcome};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;

fn main() {
    let args = parse_args();
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.json"));

    match args.mode {
        Mode::List => {
            for rule in registry::rules() {
                println!("{:<16} {}", rule.name(), rule.summary());
            }
            for rule in registry::cross_rules() {
                println!("{:<16} {}", rule.name(), rule.summary());
            }
        }
        Mode::UpdateBaseline => {
            let report = registry::scan_workspace(&args.root).unwrap_or_else(die);
            fail_on_problems(&report.problems);
            // Hard-rule violations can never be grandfathered, so they
            // never enter the baseline either.
            let baseline = Baseline::from_counts(registry::baselinable_counts(&report));
            baseline.store(&baseline_path).unwrap_or_else(die);
            println!(
                "baseline written to {}: {} grandfathered violation(s) across {} key(s) \
                 ({} file(s) scanned)",
                baseline_path.display(),
                baseline.total(),
                baseline.entries().len(),
                report.files_scanned,
            );
        }
        Mode::Check => {
            let baseline = Baseline::load(&baseline_path).unwrap_or_else(die);
            let outcome = registry::check_workspace(&args.root, &baseline).unwrap_or_else(die);
            let table = outcome_table(&outcome);
            print!("{table}");
            if let Some(path) = &args.summary {
                let markdown = summary_markdown(&outcome);
                let result = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut file| file.write_all(markdown.as_bytes()));
                if let Err(err) = result {
                    die(format!(
                        "could not append the summary to {}: {err}",
                        path.display()
                    ))
                }
            }
            fail_on_problems(&outcome.report.problems);
            if !outcome.is_clean() {
                for violation in outcome.failing_violations() {
                    println!(
                        "::error file={},line={}::[{}] {}",
                        violation.file, violation.line, violation.rule, violation.message
                    );
                }
                std::process::exit(1);
            }
            for key in outcome.shrunk_keys() {
                println!(
                    "note: {} fell from {} baselined to {} — run `alias-lint --update-baseline` \
                     to tighten the ratchet",
                    key.key, key.baselined, key.found
                );
            }
        }
    }
}

/// Print malformed-suppression problems and exit 1 if there are any.
fn fail_on_problems(problems: &[String]) {
    for problem in problems {
        println!("::error::{problem}");
    }
    if !problems.is_empty() {
        std::process::exit(1);
    }
}

/// The human-readable per-key table printed on every check.
fn outcome_table(outcome: &CheckOutcome) -> String {
    let mut out = String::new();
    let live: usize = outcome.keys.iter().map(|k| k.found).sum();
    let _ = writeln!(
        out,
        "alias-lint: {} file(s) scanned, {} live violation(s) across {} key(s)",
        outcome.report.files_scanned,
        live,
        outcome.keys.iter().filter(|k| k.found > 0).count(),
    );
    for key in &outcome.keys {
        let status = if key.grew() {
            "GREW — new violations"
        } else if key.shrank() {
            "shrank — tighten the baseline"
        } else if key.baselined > 0 {
            "baselined"
        } else {
            "clean"
        };
        if key.found > 0 || key.baselined > 0 {
            let _ = writeln!(
                out,
                "  {:<55} found {:>3}  baselined {:>3}  {status}",
                key.key, key.found, key.baselined
            );
        }
    }
    let verdict = if outcome.is_clean() { "PASS" } else { "FAIL" };
    let _ = writeln!(out, "alias-lint: {verdict}");
    out
}

/// The markdown tables appended to `--summary`: a per-rule roll-up, then
/// the per-key detail.
fn summary_markdown(outcome: &CheckOutcome) -> String {
    let mut out = String::from("\n### alias-lint: determinism & id-space invariants\n\n");
    let per_rule = outcome.report.counts_per_rule();
    let _ = writeln!(out, "| Rule | Live | Notes |");
    let _ = writeln!(out, "|---|---:|---|");
    for rule in registry::rule_names() {
        let live = per_rule.get(rule).copied().unwrap_or(0);
        let hard = outcome
            .hard_violations()
            .iter()
            .filter(|v| v.rule == rule)
            .count();
        let note = if hard > 0 {
            format!("❌ {hard} hard failure(s)")
        } else if live > 0 {
            "⏳ ratcheted".to_owned()
        } else {
            "✅ clean".to_owned()
        };
        let _ = writeln!(out, "| `{rule}` | {live} | {note} |");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "| Rule | File | Found | Baselined | Status |");
    let _ = writeln!(out, "|---|---|---:|---:|---|");
    for key in &outcome.keys {
        if key.found == 0 && key.baselined == 0 {
            continue;
        }
        let (file, rule) = key.key.rsplit_once("::").unwrap_or((key.key.as_str(), "?"));
        let status = if key.grew() {
            "❌ grew"
        } else if key.shrank() {
            "📉 shrank (tighten baseline)"
        } else if key.baselined > 0 {
            "⏳ baselined"
        } else {
            "✅"
        };
        let _ = writeln!(
            out,
            "| `{rule}` | `{file}` | {} | {} | {status} |",
            key.found, key.baselined
        );
    }
    let _ = writeln!(
        out,
        "\n{} file(s) scanned; verdict: **{}**.",
        outcome.report.files_scanned,
        if outcome.is_clean() { "PASS" } else { "FAIL" },
    );
    for problem in &outcome.report.problems {
        let _ = writeln!(out, "\n- ❌ {problem}");
    }
    out
}

enum Mode {
    Check,
    UpdateBaseline,
    List,
}

struct Args {
    mode: Mode,
    root: PathBuf,
    baseline: Option<PathBuf>,
    summary: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut mode = Mode::Check;
    let mut root = PathBuf::from(".");
    let mut baseline = None;
    let mut summary = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--update-baseline" => mode = Mode::UpdateBaseline,
            "--list" => mode = Mode::List,
            "--root" => root = required_path(args.next(), "--root"),
            "--baseline" => baseline = Some(required_path(args.next(), "--baseline")),
            "--summary" => summary = Some(required_path(args.next(), "--summary")),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    Args {
        mode,
        root,
        baseline,
        summary,
    }
}

fn required_path(value: Option<String>, flag: &str) -> PathBuf {
    match value {
        Some(path) => PathBuf::from(path),
        None => usage(&format!("{flag} requires a path")),
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: alias-lint [--check | --update-baseline | --list] \
         [--root <dir>] [--baseline <path>] [--summary <path>]"
    );
    std::process::exit(2);
}

fn die<T>(message: impl std::fmt::Display) -> T {
    eprintln!("error: {message}");
    std::process::exit(2);
}
