//! A hand-rolled Rust tokenizer: just enough lexical structure for lints.
//!
//! The workspace is built offline, so pulling `syn` (and its proc-macro
//! dependency tree) in for what is fundamentally a token-pattern scan would
//! be disproportionate.  This tokenizer understands exactly the lexical
//! features that matter for not mis-firing inside non-code text:
//!
//! * line and (nested) block comments — captured separately, because the
//!   suppression syntax (`// lint:allow(rule): reason`) lives in them;
//! * string literals in every flavour (`"…"`, `r#"…"#`, `b"…"`, `br"…"`,
//!   `c"…"`), char literals, and lifetimes (so `'a` is not half a char);
//! * identifiers (keywords are not distinguished — rules match on text)
//!   and numeric literals;
//! * punctuation, with the handful of multi-character operators that
//!   matter for pattern matching (`::`, `->`, `=>`, comparison and
//!   compound-assignment operators) merged into single tokens so `=` in a
//!   pattern never accidentally matches half of `=>` or `==`.
//!
//! Everything is positioned by 1-based line number; rules report lines and
//! the suppression table is keyed by them.

/// What kind of lexical atom a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `for`, `_`).
    Ident,
    /// A punctuation token, possibly multi-character (`::`, `=>`, `<`).
    Punct,
    /// A string/char/numeric literal (contents are not interpreted).
    Literal,
    /// A lifetime (`'a`), including the leading quote.
    Lifetime,
}

/// One token of the scanned source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text, exactly as written.
    pub text: String,
    /// The lexical class.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether the token is the identifier `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether the token is the punctuation `text`.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// One comment of the scanned source (`//…` without the newline, or
/// `/*…*/` including delimiters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment text including its `//` / `/*` introducer.
    pub text: String,
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Whether no token precedes the comment on its starting line — a
    /// standalone comment suppresses the *next* line, a trailing one its
    /// own.
    pub standalone: bool,
}

/// Multi-character punctuation merged into single tokens, longest first.
const MULTI_PUNCT: &[&str] = &[
    "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "^=", "|=", "&=", "..",
];

/// Tokenize `source`, returning the code tokens and the comments.
pub fn tokenize(source: &str) -> (Vec<Token>, Vec<Comment>) {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    // Line number of the last token pushed — used to classify comments as
    // standalone vs trailing.
    let mut last_token_line = 0u32;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: source[start..i].to_owned(),
                    line,
                    standalone: last_token_line != line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let standalone = last_token_line != line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    text: source[start..i].to_owned(),
                    line: start_line,
                    standalone,
                });
            }
            b'"' => {
                let (end, lines) = skip_string(bytes, i);
                tokens.push(Token {
                    text: String::from("\"…\""),
                    kind: TokenKind::Literal,
                    line,
                });
                last_token_line = line;
                line += lines;
                i = end;
            }
            b'r' | b'b' | b'c' if is_raw_or_byte_string(bytes, i) => {
                let (end, lines) = skip_prefixed_string(bytes, i);
                tokens.push(Token {
                    text: String::from("\"…\""),
                    kind: TokenKind::Literal,
                    line,
                });
                last_token_line = line;
                line += lines;
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
                if let Some(end) = lifetime_end(bytes, i) {
                    tokens.push(Token {
                        text: source[i..end].to_owned(),
                        kind: TokenKind::Lifetime,
                        line,
                    });
                    last_token_line = line;
                    i = end;
                } else {
                    let end = skip_char_literal(bytes, i);
                    tokens.push(Token {
                        text: String::from("'…'"),
                        kind: TokenKind::Literal,
                        line,
                    });
                    last_token_line = line;
                    i = end;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                tokens.push(Token {
                    text: source[start..i].to_owned(),
                    kind: TokenKind::Ident,
                    line,
                });
                last_token_line = line;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i] == b'_' || bytes[i] == b'.' || bytes[i].is_ascii_alphanumeric())
                {
                    // `1..2` is a range, not part of the number.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    text: source[start..i].to_owned(),
                    kind: TokenKind::Literal,
                    line,
                });
                last_token_line = line;
            }
            _ => {
                let rest = &source[i..];
                let first = rest.chars().next().expect("rest is non-empty");
                let text = match MULTI_PUNCT.iter().find(|p| rest.starts_with(**p)) {
                    Some(p) => &rest[..p.len()],
                    None => &rest[..first.len_utf8()],
                };
                tokens.push(Token {
                    text: text.to_owned(),
                    kind: TokenKind::Punct,
                    line,
                });
                last_token_line = line;
                i += text.len();
            }
        }
    }
    (tokens, comments)
}

/// Whether position `i` starts a raw/byte/C string literal (`r"`, `r#"`,
/// `b"`, `br"`, `br#"`, `c"`, …) as opposed to a plain identifier.
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (`br`, `cr`), then optional `#`s, then `"`.
    let mut letters = 0;
    while j < bytes.len() && matches!(bytes[j], b'r' | b'b' | b'c') && letters < 2 {
        j += 1;
        letters += 1;
    }
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    letters > 0 && bytes.get(j) == Some(&b'"') && {
        // `b'x'` (byte char) is handled by the char path; require a quote.
        true
    }
}

/// Skip a plain `"…"` string starting at `i`; returns (end index, newlines
/// crossed).
fn skip_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut lines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                lines += 1;
                j += 1;
            }
            b'"' => return (j + 1, lines),
            _ => j += 1,
        }
    }
    (j, lines)
}

/// Skip a prefixed (`r`/`b`/`c`, optional `#`s) string starting at `i`.
fn skip_prefixed_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    let mut raw = false;
    while j < bytes.len() && matches!(bytes[j], b'r' | b'b' | b'c') {
        raw |= bytes[j] == b'r';
        j += 1;
    }
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(bytes.get(j), Some(&b'"'));
    j += 1;
    let mut lines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' if !raw => j += 2,
            b'\n' => {
                lines += 1;
                j += 1;
            }
            b'"' => {
                let mut k = j + 1;
                let mut closing = 0usize;
                while closing < hashes && bytes.get(k) == Some(&b'#') {
                    closing += 1;
                    k += 1;
                }
                if closing == hashes {
                    return (k, lines);
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, lines)
}

/// If `'` at `i` starts a lifetime, return the index one past it.
fn lifetime_end(bytes: &[u8], i: usize) -> Option<usize> {
    let first = *bytes.get(i + 1)?;
    if first != b'_' && !first.is_ascii_alphabetic() {
        return None;
    }
    let mut j = i + 2;
    while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    // `'a'` is a char literal, `'a` (no closing quote) a lifetime.
    if bytes.get(j) == Some(&b'\'') {
        None
    } else {
        Some(j)
    }
}

/// Skip a char literal starting at the `'` at `i`.
fn skip_char_literal(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            b'\n' => return j, // malformed; stop at the line end
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        tokenize(source)
            .0
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let (tokens, comments) = tokenize("let x = 1; // trailing HashMap\n// standalone\nfoo();");
        assert!(tokens.iter().all(|t| t.text != "HashMap"));
        assert_eq!(comments.len(), 2);
        assert!(!comments[0].standalone);
        assert_eq!(comments[0].line, 1);
        assert!(comments[1].standalone);
        assert_eq!(comments[1].line, 2);
        assert_eq!(tokens.last().unwrap().line, 3);
    }

    #[test]
    fn nested_block_comments_and_strings_hide_idents() {
        let src = "/* outer /* HashMap */ still */ let s = \"HashMap\"; r#\"SystemTime\"#;";
        assert_eq!(idents(src), vec!["let", "s"]);
    }

    #[test]
    fn multiline_strings_keep_line_numbers_right() {
        let src = "let s = \"a\nb\nc\";\nfoo();";
        let (tokens, _) = tokenize(src);
        assert_eq!(tokens.last().unwrap().line, 4);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (tokens, _) = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        assert_eq!(
            tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal && t.text == "'…'")
                .count(),
            2
        );
    }

    #[test]
    fn multi_char_puncts_are_merged() {
        let (tokens, _) = tokenize("std::collections::HashMap; a => b; c -> d; e == f; 0..=9");
        let puncts: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"=>"));
        assert!(puncts.contains(&"->"));
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"..="));
        assert!(!puncts.contains(&"="));
    }

    #[test]
    fn byte_and_raw_strings_are_single_literals() {
        assert_eq!(
            idents("b\"bytes\" br#\"raw HashSet\"# c\"cstr\""),
            Vec::<String>::new()
        );
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let (tokens, _) = tokenize("for i in 0..10 {}");
        assert!(tokens.iter().any(|t| t.is_punct("..")));
        assert!(tokens.iter().any(|t| t.text == "0"));
        assert!(tokens.iter().any(|t| t.text == "10"));
    }
}
