//! # alias-lint
//!
//! An offline, dependency-light static-analysis pass over the workspace's
//! own source, enforcing the two invariant families the test suite keeps
//! re-discovering the hard way:
//!
//! * **Determinism** — the repo's one load-bearing correctness property is
//!   a byte-identical `EXPERIMENTS_MEASURED.md` at any thread count and
//!   across processes.  Twice it has been broken by the same bug class
//!   (hash-map iteration order observed by a shared RNG / by canonical set
//!   ordering) and caught only after the fact by parity tests.  The
//!   [`det-hash-iter`](rules::det_hash_iter),
//!   [`det-wallclock`](rules::det_wallclock) and
//!   [`det-rng`](rules::det_rng) rules turn
//!   "can this code produce different bytes on a different run?" into a
//!   source-level check — the cheap engineering analogue of the alias
//!   calculus tradition, where "can these two names denote the same thing
//!   at runtime?" becomes decidable from the program text.
//! * **Id-space migration** — [`id-space`](rules::id_space) counts the
//!   remaining `BTreeSet<IpAddr>`/`IpAddr`-keyed containers in the
//!   pipeline crates, ratcheted by `lint-baseline.json` so the count can
//!   only fall; [`crate-hygiene`](rules::crate_hygiene) keeps the crate
//!   roots honest.
//!
//! The analyzer is a hand-rolled [`tokenizer`] (crates.io is unreachable
//! offline, and vendoring `syn` for a token-pattern scan would be
//! disproportionate) feeding a [rule registry](registry); suppression is
//! explicit and auditable (`// lint:allow(rule): reason`), and the
//! committed baseline makes CI fail on any *new* violation while existing
//! debt burns down monotonically.
//!
//! Run it with `cargo run -p alias-lint -- --check` (CI does) or
//! `-- --update-baseline` after paying down baselined debt.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod index;
pub mod registry;
pub mod rules;
pub mod source;
pub mod tokenizer;

pub use baseline::Baseline;
pub use index::WorkspaceIndex;
pub use registry::{
    baselinable_counts, check_workspace, cross_rules, is_hard, rule_names, rules, scan_workspace,
    CheckOutcome, ScanReport,
};
pub use rules::{CrossRule, Rule, Violation};
pub use source::SourceFile;
