//! Integration tests: the lint against fixture workspaces with seeded
//! violations (one per rule, including the PR2 regression shape and the
//! PR8 cross-file dodges), a clean fixture that must produce zero
//! findings, the hard-fail semantics of the finished id-space migration,
//! and the baseline ratchet round trips — including the shrink to zero.

use alias_lint::{baselinable_counts, check_workspace, is_hard, scan_workspace, Baseline};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn every_rule_catches_its_seeded_fixture_violation() {
    let report = scan_workspace(&fixture("violations")).expect("fixture scans");
    assert_eq!(report.problems, Vec::<String>::new());
    let counts = report.counts();
    let expected: BTreeMap<String, usize> = [
        // Crate root missing both hygiene attributes.
        ("crates/core/src/lib.rs::crate-hygiene", 2),
        // IpAddr-keyed containers spelled out in scoped crates.
        ("crates/core/src/lib.rs::id-space", 2),
        // Wall-clock reads outside the alias-obs observability layer.
        ("crates/core/src/timing.rs::det-wallclock", 2),
        // The laundering re-export: `pub use … AddrSet as GroupSet`
        // counts in midar (ratchet scope) and keeps the taint flowing.
        ("crates/midar/src/lib.rs::id-space", 1),
        // The PR2 regression: HashMap iterated (and a HashSet drained)
        // while a shared RNG is consumed.
        ("crates/netsim/src/lib.rs::det-hash-iter", 2),
        // The transitive helper chain ends in thread_rng — also ambient
        // entropy in its own right.
        ("crates/netsim/src/shards.rs::det-rng", 1),
        // A captured `let mut` and a sink reached two calls away.
        ("crates/netsim/src/shards.rs::shard-purity", 2),
        ("crates/resolve/src/lib.rs::id-space", 1),
        // The alias dodge inside a hard crate: the import line plus one
        // use of `AddrSet`, one use of the re-exported `GroupSet`.
        ("crates/scan/src/dodge.rs::id-space", 3),
        // A raw Instant::now in scan pacing — the post-PR10 regression
        // shape, now that resolver/bench carve-outs are gone.
        ("crates/scan/src/pacing.rs::det-wallclock", 1),
        // Ambient entropy: thread_rng / from_entropy / from_os_rng.
        ("crates/scan/src/lib.rs::det-rng", 3),
        // Encoder drift: a missing variant and the wildcard hiding it.
        ("crates/store/src/lib.rs::variant-coverage", 2),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_owned(), v))
    .collect();
    assert_eq!(counts, expected);
}

#[test]
fn alias_dodges_are_seen_through_renames_and_reexports() {
    // Neither `AddrSet` nor `GroupSet` mentions an address-keyed
    // container by name; both must resolve through the workspace index.
    let report = scan_workspace(&fixture("violations")).expect("fixture scans");
    let dodge: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.file == "crates/scan/src/dodge.rs")
        .collect();
    assert_eq!(dodge.len(), 3, "{dodge:?}");
    assert!(dodge
        .iter()
        .all(|v| v.rule == "id-space" && v.message.contains("resolves to")));
    assert!(
        dodge.iter().any(|v| v.message.contains("GroupSet")),
        "the re-export chain must be followed: {dodge:?}"
    );
}

#[test]
fn hard_id_space_violations_fail_even_when_fully_baselined() {
    // The migration acceptance property: grandfather *everything* the
    // scan found and the check still fails — id-space findings inside
    // core/resolve/store/scan are hard, baselines cannot cover them.
    let root = fixture("violations");
    let report = scan_workspace(&root).expect("fixture scans");
    let everything = Baseline::from_counts(report.counts());
    let outcome = check_workspace(&root, &everything).expect("fixture checks");
    assert!(!outcome.is_clean());

    let hard = outcome.hard_violations();
    assert!(!hard.is_empty());
    assert!(hard.iter().all(|v| v.rule == "id-space"));
    // The dodged uses in scan are among them: aliases and re-exports do
    // not soften the failure.
    assert!(hard.iter().any(|v| v.file == "crates/scan/src/dodge.rs"));
    // midar stays ratchet scope: its id-space finding is not hard, and
    // with a covering baseline it does not fail the check.
    assert!(!hard.iter().any(|v| v.file.starts_with("crates/midar/")));
    let failing = outcome.failing_violations();
    assert!(!failing.iter().any(|v| v.file.starts_with("crates/midar/")));
    // And a regenerated baseline refuses to absorb hard findings.
    for key in baselinable_counts(&report).keys() {
        assert!(!key.contains("dodge.rs"), "hard key baselined: {key}");
    }
}

#[test]
fn transitive_shard_impurity_carries_the_call_trail() {
    let report = scan_workspace(&fixture("violations")).expect("fixture scans");
    let purity: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "shard-purity")
        .collect();
    assert_eq!(purity.len(), 2, "{purity:?}");
    assert!(purity.iter().any(|v| v.message.contains("`totals`")));
    let trail = purity
        .iter()
        .find(|v| v.message.contains("through"))
        .expect("transitive finding");
    assert!(
        trail.message.contains("helper → deep_helper → thread_rng"),
        "trail should name the whole chain: {}",
        trail.message
    );
}

#[test]
fn wire_variant_drift_and_wildcards_are_flagged() {
    let report = scan_workspace(&fixture("violations")).expect("fixture scans");
    let coverage: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "variant-coverage")
        .collect();
    assert_eq!(coverage.len(), 2, "{coverage:?}");
    let drift = coverage
        .iter()
        .find(|v| v.message.contains("RateLimit"))
        .expect("missing-variant finding");
    assert!(drift.message.contains("to_wire_bytes"));
    assert!(coverage.iter().any(|v| v.message.contains("wildcard")));
}

#[test]
fn reintroducing_the_pr2_pattern_in_netsim_fails_the_check() {
    // The acceptance property: with an id-space-only baseline (like the
    // committed one — det-hash-iter is never grandfathered), the netsim
    // HashMap-under-RNG fixture is a *new* violation and the check fails.
    let mut id_space_only = BTreeMap::new();
    for (key, count) in scan_workspace(&fixture("violations"))
        .expect("fixture scans")
        .counts()
    {
        if key.ends_with("::id-space") {
            id_space_only.insert(key, count);
        }
    }
    let baseline = Baseline::from_counts(id_space_only);
    let outcome = check_workspace(&fixture("violations"), &baseline).expect("fixture checks");
    assert!(!outcome.is_clean());
    assert!(outcome
        .new_violations()
        .iter()
        .any(|v| { v.rule == "det-hash-iter" && v.file == "crates/netsim/src/lib.rs" }));
}

#[test]
fn suppressed_violations_are_not_reported() {
    // resolve/src/lib.rs holds two IpAddr-keyed containers; the render
    // boundary one carries a lint:allow and must not be counted.
    let report = scan_workspace(&fixture("violations")).expect("fixture scans");
    let resolve_id_space: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.file == "crates/resolve/src/lib.rs" && v.rule == "id-space")
        .collect();
    assert_eq!(resolve_id_space.len(), 1);
    assert!(resolve_id_space[0].message.contains("BTreeSet"));
}

#[test]
fn clean_fixture_produces_no_findings() {
    // The clean twins: a hard crate in id space, pure shard closures
    // (shard-local state and the freeze idiom), and fully-covered wire
    // functions with a legal literal-tag wildcard.
    let report = scan_workspace(&fixture("clean")).expect("fixture scans");
    assert_eq!(report.problems, Vec::<String>::new());
    assert_eq!(
        report.violations.len(),
        0,
        "false positives: {:?}",
        report.violations
    );
    let outcome = check_workspace(&fixture("clean"), &Baseline::empty()).expect("fixture checks");
    assert!(outcome.is_clean());
    assert!(outcome.new_violations().is_empty());
}

#[test]
fn baseline_ratchet_round_trips_and_only_falls() {
    let root = fixture("violations");
    let report = scan_workspace(&root).expect("fixture scans");
    // What --update-baseline grandfathers: everything except hard
    // findings, which never enter a baseline.
    let baseline = Baseline::from_counts(baselinable_counts(&report));

    // Store/load round trip through a real file (what --update-baseline
    // writes is what --check reads).
    let path = std::env::temp_dir().join("alias-lint-ratchet-roundtrip.json");
    baseline.store(&path).expect("baseline stores");
    let loaded = Baseline::load(&path).expect("baseline loads");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, baseline);

    // Exactly-baselined ratchetable debt: nothing shrunk, and the only
    // failures left are the hard id-space findings.
    let outcome = check_workspace(&root, &loaded).expect("checks");
    assert!(outcome.shrunk_keys().is_empty());
    assert!(outcome.new_violations().iter().all(|v| is_hard(v)));
    assert!(outcome.failing_violations().iter().all(|v| is_hard(v)));

    // Against an empty baseline every violation is new: the ratchet
    // never grows silently.
    let outcome = check_workspace(&root, &Baseline::empty()).expect("checks");
    assert!(!outcome.is_clean());
    assert_eq!(outcome.new_violations().len(), report.violations.len());

    // A baseline above the live counts reports ratchet progress instead
    // — on a ratcheted key (midar), where the baseline is the authority.
    let mut inflated = loaded.entries().clone();
    let key = "crates/midar/src/lib.rs::id-space".to_owned();
    *inflated.get_mut(&key).expect("key exists") += 3;
    let outcome = check_workspace(&root, &Baseline::from_counts(inflated)).expect("checks");
    let shrunk = outcome.shrunk_keys();
    assert_eq!(shrunk.len(), 1);
    assert_eq!(shrunk[0].key, key);
    assert_eq!((shrunk[0].found, shrunk[0].baselined), (1, 4));
}

#[test]
fn ratchet_shrink_round_trips_at_zero() {
    // A stale baseline entry over a now-clean workspace: the check stays
    // green and reports the key as shrinkable down to zero …
    let root = fixture("clean");
    let stale = Baseline::from_counts(
        [("crates/pipeline/src/lib.rs::det-rng".to_owned(), 2)]
            .into_iter()
            .collect(),
    );
    let outcome = check_workspace(&root, &stale).expect("checks");
    assert!(outcome.is_clean());
    let shrunk = outcome.shrunk_keys();
    assert_eq!(shrunk.len(), 1);
    assert_eq!((shrunk[0].found, shrunk[0].baselined), (0, 2));

    // … regenerating drops the key entirely (the ratchet reaches 0) …
    let report = scan_workspace(&root).expect("fixture scans");
    let regenerated = Baseline::from_counts(baselinable_counts(&report));
    assert!(regenerated.entries().is_empty());

    // … and the zero baseline round-trips through disk and stays clean
    // with nothing left to shrink.
    let path = std::env::temp_dir().join("alias-lint-ratchet-zero.json");
    regenerated.store(&path).expect("baseline stores");
    let loaded = Baseline::load(&path).expect("baseline loads");
    std::fs::remove_file(&path).ok();
    let outcome = check_workspace(&root, &loaded).expect("checks");
    assert!(outcome.is_clean());
    assert!(outcome.shrunk_keys().is_empty());
}
