//! Integration tests: the lint against fixture workspaces with seeded
//! violations (one per rule, including the PR2 regression shape), a clean
//! fixture that must produce zero findings, and the baseline ratchet
//! round trip.

use alias_lint::{check_workspace, scan_workspace, Baseline};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn every_rule_catches_its_seeded_fixture_violation() {
    let report = scan_workspace(&fixture("violations")).expect("fixture scans");
    assert_eq!(report.problems, Vec::<String>::new());
    let counts = report.counts();
    let expected: BTreeMap<String, usize> = [
        // The PR2 regression: HashMap iterated (and a HashSet drained)
        // while a shared RNG is consumed.
        ("crates/netsim/src/lib.rs::det-hash-iter", 2),
        // Crate root missing both hygiene attributes.
        ("crates/core/src/lib.rs::crate-hygiene", 2),
        // IpAddr-keyed containers in scoped crates.
        ("crates/core/src/lib.rs::id-space", 2),
        ("crates/resolve/src/lib.rs::id-space", 1),
        // Wall-clock reads outside the designated timing sites.
        ("crates/core/src/timing.rs::det-wallclock", 2),
        // Ambient entropy: thread_rng / from_entropy / from_os_rng.
        ("crates/scan/src/lib.rs::det-rng", 3),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_owned(), v))
    .collect();
    assert_eq!(counts, expected);
}

#[test]
fn reintroducing_the_pr2_pattern_in_netsim_fails_the_check() {
    // The acceptance property: with an id-space-only baseline (like the
    // committed one — det-hash-iter is never grandfathered), the netsim
    // HashMap-under-RNG fixture is a *new* violation and the check fails.
    let mut id_space_only = BTreeMap::new();
    for (key, count) in scan_workspace(&fixture("violations"))
        .expect("fixture scans")
        .counts()
    {
        if key.ends_with("::id-space") {
            id_space_only.insert(key, count);
        }
    }
    let baseline = Baseline::from_counts(id_space_only);
    let outcome = check_workspace(&fixture("violations"), &baseline).expect("fixture checks");
    assert!(!outcome.is_clean());
    assert!(outcome
        .new_violations()
        .iter()
        .any(|v| { v.rule == "det-hash-iter" && v.file == "crates/netsim/src/lib.rs" }));
}

#[test]
fn suppressed_violations_are_not_reported() {
    // resolve/src/lib.rs holds two IpAddr-keyed containers; the render
    // boundary one carries a lint:allow and must not be counted.
    let report = scan_workspace(&fixture("violations")).expect("fixture scans");
    let resolve_id_space: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.file == "crates/resolve/src/lib.rs" && v.rule == "id-space")
        .collect();
    assert_eq!(resolve_id_space.len(), 1);
    assert!(resolve_id_space[0].message.contains("BTreeSet"));
}

#[test]
fn clean_fixture_produces_no_findings() {
    let report = scan_workspace(&fixture("clean")).expect("fixture scans");
    assert_eq!(report.problems, Vec::<String>::new());
    assert_eq!(
        report.violations.len(),
        0,
        "false positives: {:?}",
        report.violations
    );
    let outcome = check_workspace(&fixture("clean"), &Baseline::empty()).expect("fixture checks");
    assert!(outcome.is_clean());
    assert!(outcome.new_violations().is_empty());
}

#[test]
fn baseline_ratchet_round_trips_and_only_falls() {
    let root = fixture("violations");
    let report = scan_workspace(&root).expect("fixture scans");
    let baseline = Baseline::from_counts(report.counts());

    // Store/load round trip through a real file (what --update-baseline
    // writes is what --check reads).
    let path = std::env::temp_dir().join("alias-lint-ratchet-roundtrip.json");
    baseline.store(&path).expect("baseline stores");
    let loaded = Baseline::load(&path).expect("baseline loads");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, baseline);

    // Exactly-baselined: clean, nothing new, nothing shrunk.
    let outcome = check_workspace(&root, &loaded).expect("checks");
    assert!(outcome.is_clean());
    assert!(outcome.new_violations().is_empty());
    assert!(outcome.shrunk_keys().is_empty());

    // Against an empty baseline every violation is new: the ratchet never
    // grows silently.
    let outcome = check_workspace(&root, &Baseline::empty()).expect("checks");
    assert!(!outcome.is_clean());
    assert_eq!(outcome.new_violations().len(), report.violations.len());

    // A baseline above the live counts reports ratchet progress instead.
    let mut inflated = loaded.entries().clone();
    let key = "crates/core/src/lib.rs::id-space".to_owned();
    *inflated.get_mut(&key).expect("key exists") += 3;
    let outcome = check_workspace(&root, &Baseline::from_counts(inflated)).expect("checks");
    assert!(outcome.is_clean());
    let shrunk = outcome.shrunk_keys();
    assert_eq!(shrunk.len(), 1);
    assert_eq!(shrunk[0].key, key);
    assert_eq!((shrunk[0].found, shrunk[0].baselined), (2, 5));
}
