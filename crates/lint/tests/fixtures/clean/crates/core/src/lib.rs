//! Clean twin of the id-space fixture: a hard crate whose state lives in
//! dense id space — nothing for the rule to flag, with or without a
//! baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

/// Dense alias-set membership keyed by interned id slot.
pub struct Membership {
    /// Set index per `AddrId` slot (`u32::MAX` = unassigned).
    pub slot_of: Vec<u32>,
    /// Per-technique set counts, keyed by label.
    pub per_label: BTreeMap<String, u32>,
}

/// Point lookup at the report boundary.
pub fn set_of(membership: &Membership, id: usize) -> Option<u32> {
    membership
        .slot_of
        .get(id)
        .copied()
        .filter(|&slot| slot != u32::MAX)
}
