//! Fixture: a clean pipeline crate — deterministic iteration, id-space
//! containers, hygiene headers.  Zero violations expected; anything the
//! lint flags here is a false positive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

/// A dense id, the id-space way to key hot-path state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AddrId(pub u32);

/// Id-keyed state: ordered container, ordered iteration, no IpAddr keys.
pub fn merge(groups: &BTreeMap<AddrId, u32>) -> u32 {
    let mut total = 0;
    for (_id, weight) in groups {
        total += weight;
    }
    total
}

/// Hash maps are fine as long as nothing iterates them: point lookups
/// only.
pub fn lookup(index: &HashMap<AddrId, u32>, id: AddrId) -> Option<u32> {
    index.get(&id).copied()
}

/// Sorting into a `Vec` before iterating is the sanctioned escape.
pub fn sorted_weights(index: &HashMap<AddrId, u32>, ids: &[AddrId]) -> Vec<u32> {
    ids.iter().filter_map(|id| index.get(id).copied()).collect()
}
