//! Clean twin of the shard-purity fixture: shard-local state and the
//! freeze idiom — pure closures at any thread count.

/// Shard-local accumulation: every binding lives inside the closure.
pub fn shard_local(shards: usize, threads: usize) -> Vec<Vec<u32>> {
    alias_exec::shard_map(shards, threads, |shard| {
        let mut rows: Vec<u32> = Vec::new();
        rows.push(shard as u32);
        rows
    })
}

/// The freeze idiom: the mutable table is re-bound read-only before the
/// harness call, so the closure captures an immutable reference.
pub fn frozen_table(shards: usize, threads: usize) -> Vec<u64> {
    let mut table: Vec<u64> = Vec::new();
    for shard in 0..shards {
        table.push(shard as u64);
    }
    let table = &table;
    alias_exec::shard_map(shards, threads, |shard| table[shard])
}
