//! Clean twin of the variant-coverage fixture: both wire functions cover
//! every tracked variant, and the decoder's wildcard sits over literal
//! byte tags (not variants), which stays legal.

/// Fixture twin of the store's on-disk payload.
pub enum ServicePayload {
    /// SSH banner byte.
    Ssh(u8),
    /// BGP router identifier.
    Bgp(u32),
    /// ICMP rate-limit round.
    RateLimit(u8),
}

/// Encoder: every variant listed, no wildcard.
pub fn to_wire_bytes(payload: &ServicePayload) -> Vec<u8> {
    match payload {
        ServicePayload::Ssh(banner) => vec![1, *banner],
        ServicePayload::Bgp(ident) => ident.to_be_bytes().to_vec(),
        ServicePayload::RateLimit(round) => vec![3, *round],
    }
}

/// Decoder: complete, with a legal wildcard over unknown tags.
pub fn from_wire_bytes(bytes: &[u8]) -> Option<ServicePayload> {
    match bytes.first()? {
        1 => Some(ServicePayload::Ssh(bytes[1])),
        2 => Some(ServicePayload::Bgp(7)),
        3 => Some(ServicePayload::RateLimit(bytes[1])),
        _ => None,
    }
}
