//! Fixture: wall-clock reads outside the alias-obs observability layer.

/// Wall-clock in a pipeline crate — det-wallclock flags both reads.
pub fn stamp() -> (std::time::Instant, u64) {
    let started = std::time::Instant::now();
    let secs = std::time::SystemTime::UNIX_EPOCH.elapsed().map(|d| d.as_secs()).unwrap_or(0);
    (started, secs)
}
