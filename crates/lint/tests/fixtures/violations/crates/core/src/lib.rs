//! Fixture: a crate root missing both hygiene attributes (crate-hygiene
//! flags each), holding `IpAddr`-keyed containers (id-space) in a scoped
//! crate.

use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;

/// An alias set still in address space — the migration the id-space rule
/// burns down.
pub type AliasSet = BTreeSet<IpAddr>;

/// An address-keyed index, same debt.
pub type AddrIndex = BTreeMap<IpAddr, u32>;
