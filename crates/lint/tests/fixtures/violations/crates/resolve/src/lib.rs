//! Fixture: id-space debt in `resolve`, one of them suppressed — the
//! suppressed line must NOT be reported.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, HashMap};
use std::net::IpAddr;

/// Unsuppressed: counted by the id-space rule.
pub type PendingSet = BTreeSet<IpAddr>;

/// Suppressed: the render boundary legitimately works in address space.
// lint:allow(id-space): render boundary — addresses are the output format
pub type RenderIndex = HashMap<IpAddr, String>;
