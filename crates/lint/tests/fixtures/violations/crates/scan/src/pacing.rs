//! Fixture: a raw wall-clock read in scan-stage pacing code.  PR10 moved
//! every timing read behind alias-obs; a bare `Instant::now` here is the
//! regression shape det-wallclock must catch.

/// Paces a probe burst off the real clock instead of an alias-obs
/// stopwatch — nondeterministic under load, flagged by det-wallclock.
pub fn pace_burst() -> std::time::Duration {
    let started = std::time::Instant::now();
    started.elapsed()
}
