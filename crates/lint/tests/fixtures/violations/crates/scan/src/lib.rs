//! Fixture: ambient entropy in a scanner — every det-rng entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seeds a probe order from ambient entropy instead of the campaign seed.
pub fn entropy_probe_order() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

/// Same debt through the `SeedableRng` escape hatches.
pub fn entropy_seeded() -> u64 {
    let a = rand_chacha::ChaCha8Rng::from_entropy().next_u64();
    let b = rand_chacha::ChaCha8Rng::from_os_rng().next_u64();
    a ^ b
}
