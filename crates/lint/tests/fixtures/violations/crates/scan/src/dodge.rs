//! Fixture: the alias/re-export dodge inside a hard crate.  Neither name
//! below says `BTreeSet<IpAddr>`, but both resolve to it through the
//! workspace index — and inside `scan` that is a hard failure no
//! baseline entry may grandfather.

use alias_netsim::AddrSet;

/// Alias-dodged debt: `AddrSet` is `BTreeSet<IpAddr>` by another name.
pub fn pending(sets: &[AddrSet]) -> usize {
    sets.len()
}

/// Re-export-dodged debt: `GroupSet` renames the same container again.
pub fn grouped(group: &alias_midar::GroupSet) -> usize {
    group.len()
}
