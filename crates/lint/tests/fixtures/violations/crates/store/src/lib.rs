//! Fixture: wire-format drift.  The encoder never learned about the
//! newest variant and a wildcard absorbs it silently; the decoder stays
//! complete, and its literal-tag wildcard is legal (the patterns are
//! bytes, not variants).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Fixture twin of the store's on-disk payload.
pub enum ServicePayload {
    /// SSH banner byte.
    Ssh(u8),
    /// BGP router identifier.
    Bgp(u32),
    /// The newest addition the encoder never learned about.
    RateLimit(u8),
}

/// Encoder: one variant short, with the gap hidden behind a wildcard.
pub fn to_wire_bytes(payload: &ServicePayload) -> Vec<u8> {
    match payload {
        ServicePayload::Ssh(banner) => vec![1, *banner],
        ServicePayload::Bgp(ident) => ident.to_be_bytes().to_vec(),
        _ => Vec::new(),
    }
}

/// Decoder: every variant rebuilt, wildcard over literal tags only.
pub fn from_wire_bytes(bytes: &[u8]) -> Option<ServicePayload> {
    match bytes.first()? {
        1 => Some(ServicePayload::Ssh(bytes[1])),
        2 => Some(ServicePayload::Bgp(7)),
        3 => Some(ServicePayload::RateLimit(bytes[1])),
        _ => None,
    }
}
