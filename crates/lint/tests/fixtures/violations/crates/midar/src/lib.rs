//! Fixture: a ratcheted crate laundering the address-set alias through
//! a `pub use` rename.  The re-export line itself is counted (midar is
//! ratchet scope), and the new name stays tainted for every downstream
//! crate — a rename cannot wash the container type clean.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use alias_netsim::AddrSet as GroupSet;
