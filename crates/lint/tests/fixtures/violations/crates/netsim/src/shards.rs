//! Fixture: impure shard closures — one mutates state captured from the
//! enclosing scope, one reaches OS entropy two calls away.  The second
//! is the PR 2 blind spot: no per-file scan can see the nondeterminism
//! hiding behind a helper call.

/// Captures `totals`, a `let mut` of the enclosing scope: shard order
/// decides the mutation order.
pub fn capture_mut(shards: usize) -> Vec<u64> {
    let mut totals = vec![0u64; shards];
    alias_exec::shard_map(shards, 2, |shard| {
        totals[shard] += 1;
        totals[shard]
    });
    totals
}

/// The closure only calls `helper`; the entropy sits in `deep_helper`.
pub fn transitive_sink(shards: usize) -> Vec<u64> {
    alias_exec::shard_map(shards, 2, |shard| helper(shard as u64))
}

fn helper(salt: u64) -> u64 {
    deep_helper().wrapping_add(salt)
}

fn deep_helper() -> u64 {
    rand::thread_rng().next_u64()
}
