//! Fixture: the out-of-scope alias definition the dodging crates lean
//! on.  Defining it here is free — netsim may hold report-boundary
//! address state — but every *use* inside the pipeline crates is debt
//! the `id-space` rule must see through the name.

use std::collections::BTreeSet;
use std::net::IpAddr;

/// An address-keyed alias set, by another name.
pub type AddrSet = BTreeSet<IpAddr>;
