//! Fixture: the PR2 regression — a `HashMap` iterated while a shared RNG
//! is consumed, the exact pattern that broke byte-identical output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// Stand-in for the seeded RNG threaded through the pipeline.
pub struct Rng(u64);

impl Rng {
    /// Next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0
    }
}

/// The PR2 shape: iteration order of `services` decides which entries the
/// RNG stream mutates — different order, different bytes.
pub fn apply_churn(services: &mut HashMap<u32, u32>, rng: &mut Rng) {
    for (_id, state) in services.iter_mut() {
        if rng.next_u64() % 10 == 0 {
            *state += 1;
        }
    }
}

/// A second PR2-adjacent shape: draining a `HashSet` into an RNG-salted
/// accumulator.
pub fn drain_actives(actives: &mut std::collections::HashSet<u32>, rng: &mut Rng) -> u64 {
    let mut acc = 0;
    for id in actives.drain() {
        acc ^= u64::from(id).rotate_left((rng.next_u64() % 64) as u32);
    }
    acc
}
