//! The flattened routed IPv4 address space.
//!
//! Internet-wide sweeps (ZMap's SYN scan, the SNMPv3 discovery scan, the
//! rate-probe ping sweep) all iterate the same object: the concatenation of
//! every routed IPv4 prefix, treated as one index space `[0, total)`.  At
//! the larger scale tiers that space runs to tens of millions of addresses,
//! so it is never materialised — [`RoutedSpace`] maps indices to addresses
//! on the fly, with random access for permuted sweeps and a linear cursor
//! for in-order range walks.

use alias_netsim::topology::Ipv4Prefix;
use alias_netsim::Internet;
use std::net::Ipv4Addr;

/// The routed IPv4 prefixes of an [`Internet`], flattened into a single
/// index space.
#[derive(Debug, Clone)]
pub struct RoutedSpace {
    prefixes: Vec<Ipv4Prefix>,
    /// `offsets[i]` is the index of `prefixes[i]`'s first address.
    offsets: Vec<u64>,
    total: u64,
}

impl RoutedSpace {
    /// Flatten `internet`'s routed IPv4 prefixes.
    pub fn of(internet: &Internet) -> Self {
        let prefixes = internet.routed_v4_prefixes();
        let mut offsets = Vec::with_capacity(prefixes.len());
        let mut total: u64 = 0;
        for prefix in &prefixes {
            offsets.push(total);
            total += prefix.size();
        }
        RoutedSpace {
            prefixes,
            offsets,
            total,
        }
    }

    /// Number of addresses in the space.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the space holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The address at `index`, by binary search over the prefix offsets —
    /// the random-access path used with permuted sweep orders.
    pub fn addr_at(&self, index: u64) -> Ipv4Addr {
        let slot = match self.offsets.binary_search(&index) {
            Ok(exact) => exact,
            Err(insert) => insert - 1,
        };
        let prefix = self.prefixes[slot];
        Ipv4Addr::from(u32::from(prefix.base) + (index - self.offsets[slot]) as u32)
    }

    /// Iterate the addresses at indices `[start, end)` in index order: one
    /// binary search to find the first prefix, then a linear walk — no
    /// per-address search and no materialised target list.
    pub fn iter_range(&self, start: u64, end: u64) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let end = end.min(self.total);
        let mut slot = if start < end {
            match self.offsets.binary_search(&start) {
                Ok(exact) => exact,
                Err(insert) => insert - 1,
            }
        } else {
            0
        };
        (start..end).map(move |index| {
            while index - self.offsets[slot] >= self.prefixes[slot].size() {
                slot += 1;
            }
            Ipv4Addr::from(
                u32::from(self.prefixes[slot].base) + (index - self.offsets[slot]) as u32,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::{InternetBuilder, InternetConfig};

    fn space() -> RoutedSpace {
        let internet = InternetBuilder::new(InternetConfig::tiny(3)).build();
        RoutedSpace::of(&internet)
    }

    #[test]
    fn total_matches_prefix_sizes() {
        let internet = InternetBuilder::new(InternetConfig::tiny(3)).build();
        let space = RoutedSpace::of(&internet);
        let expected: u64 = internet.routed_v4_prefixes().iter().map(|p| p.size()).sum();
        assert_eq!(space.len(), expected);
        assert!(!space.is_empty());
    }

    #[test]
    fn range_walk_matches_random_access() {
        let space = space();
        let n = space.len();
        for (start, end) in [(0, n), (1, n - 1), (n / 3, 2 * n / 3), (n - 1, n), (5, 5)] {
            let walked: Vec<Ipv4Addr> = space.iter_range(start, end).collect();
            let indexed: Vec<Ipv4Addr> = (start..end).map(|i| space.addr_at(i)).collect();
            assert_eq!(walked, indexed, "range {start}..{end}");
        }
    }

    #[test]
    fn full_walk_matches_prefix_concatenation() {
        let internet = InternetBuilder::new(InternetConfig::tiny(3)).build();
        let space = RoutedSpace::of(&internet);
        let walked: Vec<Ipv4Addr> = space.iter_range(0, space.len()).collect();
        let expected: Vec<Ipv4Addr> = internet
            .routed_v4_prefixes()
            .iter()
            .flat_map(|p| p.iter())
            .collect();
        assert_eq!(walked, expected);
    }

    #[test]
    fn out_of_bounds_end_is_clamped() {
        let space = space();
        assert_eq!(space.iter_range(0, u64::MAX).count() as u64, space.len());
    }
}
