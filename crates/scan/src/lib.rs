//! # alias-scan
//!
//! Scanning machinery that turns the simulated Internet into measurement
//! data, mirroring the two-phase methodology of the paper:
//!
//! 1. an Internet-wide, stateless TCP SYN scan on the service ports
//!    (ZMap-style, [`zmap`]),
//! 2. a stateful application-layer scan of the responsive addresses that
//!    completes the TCP handshake and records the server's unsolicited
//!    protocol messages (ZGrab2-style, [`zgrab`]),
//!
//! plus the auxiliary data paths the paper relies on: an IPv6 hitlist
//! ([`hitlist`]), an SNMPv3 engine-discovery scan ([`snmp`]), the IPID
//! probing scheduler used by the MIDAR/Ally baselines ([`ipid_probe`]),
//! and the escalating-rate ICMP burst prober behind the rate-limiting
//! technique ([`rate_probe`]).
//!
//! The [`campaign`] module bundles all of the above into the "active
//! measurement" dataset used throughout the evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod hitlist;
pub mod ipid_probe;
pub mod permute;
pub mod rate;
pub mod rate_probe;
pub mod records;
pub mod snmp;
pub mod space;
pub mod zgrab;
pub mod zmap;

pub use alias_netsim::ServiceProtocol;
pub use alias_store::{
    ColumnarSink, ObservationRef, ObservationStore, ObservationView, ProtocolTag, ShardColumns,
    SourceTag,
};
pub use campaign::{ActiveCampaign, CampaignConfig, CampaignData};
pub use hitlist::Ipv6Hitlist;
pub use rate_probe::{RateProbeConfig, RateProber};
pub use records::{DataSource, ObservationSink, ServiceObservation, ServicePayload};
pub use zgrab::ZgrabScanner;
pub use zmap::{ZmapResults, ZmapScanner};
