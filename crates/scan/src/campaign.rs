//! The full active-measurement campaign.
//!
//! This module reproduces the paper's data-collection pipeline end to end:
//!
//! 1. ZMap SYN scan of the routed IPv4 space on ports 22 and 179,
//! 2. ZGrab2 service scans of the responsive addresses (SSH and BGP),
//! 3. an Internet-wide SNMPv3 engine-discovery scan,
//! 4. an IPv6 hitlist, SYN-scanned and service-scanned the same way,
//!
//! all from a single vantage point at a fixed simulated date, producing one
//! [`CampaignData`] bundle of [`ServiceObservation`] records.

use crate::hitlist::Ipv6Hitlist;
use crate::records::{DataSource, ObservationSink, ServiceObservation};
use crate::snmp::{SnmpScanConfig, SnmpScanner};
use crate::zgrab::{ZgrabConfig, ZgrabScanner};
use crate::zmap::{ZmapConfig, ZmapScanner};
use alias_intern::{AddrId, AddrInterner};
use alias_netsim::{Internet, ServiceProtocol, SimTime, VantageKind};
use std::net::IpAddr;
use std::sync::Arc;

/// Configuration of a measurement campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The vantage point kind (the paper's own scans are single-VP).
    pub vantage: VantageKind,
    /// Campaign start (simulated time).
    pub start: SimTime,
    /// SYN scan rate in packets per second.
    pub syn_rate_pps: f64,
    /// Application-layer scan rate in connections per second.
    pub grab_rate_pps: f64,
    /// IPv6 hitlist coverage of truly active addresses.
    pub hitlist_coverage: f64,
    /// Fraction of stale entries added to the hitlist.
    pub hitlist_stale_fraction: f64,
    /// Seed for permutations and the hitlist sample.
    pub seed: u64,
    /// Worker threads for the scan phases (1 = serial).  The campaign
    /// output is byte-identical for any value — see `alias-exec`'s
    /// shard-reduce contract.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            vantage: VantageKind::SingleVp,
            start: SimTime::ZERO,
            syn_rate_pps: 200_000.0,
            grab_rate_pps: 50_000.0,
            hitlist_coverage: 0.72,
            hitlist_stale_fraction: 0.15,
            seed: 0xa11a5,
            threads: 1,
        }
    }
}

/// The output of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignData {
    /// All observations (SSH, BGP, SNMPv3; IPv4 and IPv6).
    ///
    /// The address interner is built from these at construction; code that
    /// mutates the vector afterwards must re-wrap the records with
    /// [`Self::from_observations`] so ids and observations stay in sync.
    pub observations: Vec<ServiceObservation>,
    /// The IPv6 hitlist used.
    pub hitlist: Ipv6Hitlist,
    /// Simulated time the campaign finished.
    pub finished_at: SimTime,
    /// Total SYN probes sent during discovery.
    pub syn_probes_sent: u64,
    /// Every observed address interned to a dense [`AddrId`], in first-
    /// observation order — the id space the resolution pipeline runs on.
    interner: Arc<AddrInterner>,
}

impl CampaignData {
    /// Bundle observations with campaign metadata, interning every observed
    /// address (the single place the campaign id space is defined).
    fn new(
        observations: Vec<ServiceObservation>,
        hitlist: Ipv6Hitlist,
        finished_at: SimTime,
        syn_probes_sent: u64,
    ) -> Self {
        let interner = Arc::new(AddrInterner::from_addrs(
            observations.iter().map(|o| o.addr),
        ));
        CampaignData {
            observations,
            hitlist,
            finished_at,
            syn_probes_sent,
            interner,
        }
    }

    /// Wrap pre-collected observations (a Censys snapshot, a union of data
    /// sources, a replayed trace) so they can be fed to consumers of
    /// campaign data — most notably `alias-resolve`'s techniques — without
    /// having run a scan.  The hitlist is empty and no SYN probes are
    /// accounted; `finished_at` is the latest observation timestamp.
    pub fn from_observations(observations: Vec<ServiceObservation>) -> Self {
        let finished_at = observations
            .iter()
            .map(|o| o.timestamp)
            .max()
            .unwrap_or(SimTime::ZERO);
        Self::new(
            observations,
            Ipv6Hitlist { addrs: Vec::new() },
            finished_at,
            0,
        )
    }

    /// The campaign's address interner: every observed address mapped to a
    /// dense [`AddrId`], in first-observation order.  Shared behind an
    /// `Arc` so techniques and reports can reference the id space without
    /// copying it.
    pub fn interner(&self) -> &Arc<AddrInterner> {
        &self.interner
    }

    /// The dense id of an observed address ([`None`] for addresses the
    /// campaign never observed).
    pub fn addr_id(&self, addr: IpAddr) -> Option<AddrId> {
        self.interner.get(addr)
    }

    /// Observations for one protocol.
    #[deprecated(
        since = "0.1.0",
        note = "materialises a Vec of references on the hot path; \
                use the `observations_for` iterator instead"
    )]
    pub fn for_protocol(&self, protocol: ServiceProtocol) -> Vec<&ServiceObservation> {
        self.observations_for(protocol).collect()
    }

    /// Iterator over the observations of one protocol — the allocation-free
    /// replacement for the deprecated [`Self::for_protocol`].
    pub fn observations_for(
        &self,
        protocol: ServiceProtocol,
    ) -> impl Iterator<Item = &ServiceObservation> {
        self.observations
            .iter()
            .filter(move |o| o.protocol() == protocol)
    }

    /// Stream every observation into a sink, in campaign order.
    pub fn stream_into(&self, sink: &mut dyn ObservationSink) {
        for observation in &self.observations {
            sink.accept(observation);
        }
    }

    /// Number of distinct responsive addresses for a protocol.
    pub fn address_count(&self, protocol: ServiceProtocol) -> usize {
        let mut addrs: Vec<IpAddr> = self.observations_for(protocol).map(|o| o.addr).collect();
        addrs.sort();
        addrs.dedup();
        addrs.len()
    }
}

/// Runs the paper's active-measurement pipeline against a simulated Internet.
#[derive(Debug, Clone)]
pub struct ActiveCampaign {
    config: CampaignConfig,
}

impl ActiveCampaign {
    /// Create a campaign with the given configuration.
    pub fn new(config: CampaignConfig) -> Self {
        ActiveCampaign { config }
    }

    /// Create a campaign with default settings, taking the hitlist coverage
    /// from the Internet's own configuration and the worker-thread count
    /// from the `ALIAS_THREADS` environment variable (unset, empty, `0` or
    /// unparsable values fall back to the available parallelism — see
    /// [`alias_exec::threads_from_env`]).  The thread count is a pure
    /// performance knob and never changes the campaign output.
    pub fn with_defaults(internet: &Internet) -> Self {
        let mut config = CampaignConfig::default();
        config.hitlist_coverage = internet.config().visibility.hitlist_coverage;
        config.threads = alias_exec::threads_from_env();
        Self::new(config)
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Set the worker-thread count for the scan phases (builder style).
    /// A pure performance knob: the campaign output is byte-identical for
    /// any value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Run the campaign.
    ///
    /// With `config.threads > 1` each scan phase runs as shard workers over
    /// disjoint slices of its address space; the observations (including
    /// timestamps and time-dependent payload bytes) are byte-identical to
    /// the serial run for any thread count.
    pub fn run(&self, internet: &Internet) -> CampaignData {
        let cfg = &self.config;
        let vantage = cfg.vantage;
        let threads = cfg.threads.max(1);
        let mut observations = Vec::new();

        // Phase 1: IPv4 SYN discovery on ports 22 and 179.
        let zmap = ZmapScanner::new(ZmapConfig {
            ports: vec![22, 179],
            rate_pps: cfg.syn_rate_pps,
            seed: cfg.seed,
        });
        let syn = zmap.scan_ipv4_sharded(internet, vantage, cfg.start, threads);
        let mut now = syn.finished_at;

        // Phase 2: service scans of the responsive addresses.
        let zgrab = ZgrabScanner::new(ZgrabConfig {
            rate_pps: cfg.grab_rate_pps,
            source: DataSource::Active,
        });
        let ssh_obs = zgrab.grab_sharded(
            internet,
            syn.on_port(22),
            22,
            ServiceProtocol::Ssh,
            vantage,
            now,
            threads,
        );
        now = ssh_obs.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(ssh_obs);
        let bgp_obs = zgrab.grab_sharded(
            internet,
            syn.on_port(179),
            179,
            ServiceProtocol::Bgp,
            vantage,
            now,
            threads,
        );
        now = bgp_obs.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(bgp_obs);

        // Phase 3: Internet-wide SNMPv3 engine discovery.
        let snmp = SnmpScanner::new(SnmpScanConfig {
            rate_pps: cfg.syn_rate_pps,
            source: DataSource::Active,
        });
        let snmp_obs = snmp.scan_routed_space_sharded(internet, vantage, now, threads);
        now = snmp_obs.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(snmp_obs);

        // Phase 4: IPv6 — hitlist-driven discovery and service scans.
        let hitlist = Ipv6Hitlist::generate(
            internet,
            cfg.hitlist_coverage,
            cfg.hitlist_stale_fraction,
            cfg.seed,
        );
        let v6_syn = zmap.scan_ipv6_list_sharded(internet, &hitlist.addrs, vantage, now, threads);
        now = v6_syn.finished_at;
        let v6_ssh = zgrab.grab_sharded(
            internet,
            v6_syn.on_port(22),
            22,
            ServiceProtocol::Ssh,
            vantage,
            now,
            threads,
        );
        now = v6_ssh.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(v6_ssh);
        let v6_bgp = zgrab.grab_sharded(
            internet,
            v6_syn.on_port(179),
            179,
            ServiceProtocol::Bgp,
            vantage,
            now,
            threads,
        );
        now = v6_bgp.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(v6_bgp);
        let v6_targets: Vec<IpAddr> = hitlist.addrs.iter().map(|&a| IpAddr::V6(a)).collect();
        let v6_snmp = snmp.scan_sharded(internet, &v6_targets, vantage, now, threads);
        now = v6_snmp.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(v6_snmp);

        CampaignData::new(
            observations,
            hitlist,
            now,
            syn.probes_sent + v6_syn.probes_sent,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::{InternetBuilder, InternetConfig};

    fn campaign_data() -> (Internet, CampaignData) {
        let internet = InternetBuilder::new(InternetConfig::tiny(404)).build();
        let campaign = ActiveCampaign::with_defaults(&internet);
        let data = campaign.run(&internet);
        (internet, data)
    }

    #[test]
    fn campaign_covers_all_three_protocols_and_both_families() {
        let (_, data) = campaign_data();
        assert!(data.observations_for(ServiceProtocol::Ssh).next().is_some());
        assert!(data.observations_for(ServiceProtocol::Bgp).next().is_some());
        assert!(data
            .observations_for(ServiceProtocol::Snmpv3)
            .next()
            .is_some());
        assert!(data.observations.iter().any(|o| o.is_ipv6()));
        assert!(data.observations.iter().any(|o| !o.is_ipv6()));
        assert!(data.syn_probes_sent > 0);
        assert!(data.finished_at > SimTime::ZERO);
    }

    #[test]
    fn every_observation_is_from_the_active_source_with_asn() {
        let (_, data) = campaign_data();
        for obs in &data.observations {
            assert_eq!(obs.source, DataSource::Active);
            assert!(obs.asn.is_some(), "missing ASN annotation for {obs:?}");
            assert!(obs.is_default_port());
        }
    }

    #[test]
    fn sharded_campaign_is_byte_identical_to_serial() {
        // The determinism guarantee of the execution engine: for several
        // seeds and thread counts, every observation (addresses, order,
        // timestamps, time-dependent payload bytes) and the campaign
        // metadata match the serial run exactly.
        for seed in [404u64, 2023] {
            let internet = InternetBuilder::new(InternetConfig::tiny(seed)).build();
            let serial = ActiveCampaign::new(CampaignConfig {
                seed,
                ..Default::default()
            })
            .run(&internet);
            for threads in [2usize, 7] {
                let sharded = ActiveCampaign::new(CampaignConfig {
                    seed,
                    threads,
                    ..Default::default()
                })
                .run(&internet);
                assert_eq!(
                    sharded.observations, serial.observations,
                    "seed={seed} threads={threads}"
                );
                assert_eq!(sharded.hitlist.addrs, serial.hitlist.addrs);
                assert_eq!(sharded.finished_at, serial.finished_at);
                assert_eq!(sharded.syn_probes_sent, serial.syn_probes_sent);
            }
        }
    }

    #[test]
    fn deprecated_for_protocol_matches_the_iterator() {
        let (_, data) = campaign_data();
        for protocol in [
            ServiceProtocol::Ssh,
            ServiceProtocol::Bgp,
            ServiceProtocol::Snmpv3,
        ] {
            #[allow(deprecated)]
            let legacy = data.for_protocol(protocol);
            let streamed: Vec<&ServiceObservation> = data.observations_for(protocol).collect();
            assert_eq!(legacy, streamed);
        }
    }

    #[test]
    fn stream_into_visits_every_observation_in_order() {
        struct Collector(Vec<ServiceObservation>);
        impl ObservationSink for Collector {
            fn accept(&mut self, observation: &ServiceObservation) {
                self.0.push(observation.clone());
            }
        }
        let (_, data) = campaign_data();
        let mut sink = Collector(Vec::new());
        data.stream_into(&mut sink);
        assert_eq!(sink.0, data.observations);
    }

    #[test]
    fn from_observations_wraps_pre_collected_records() {
        let (_, data) = campaign_data();
        let wrapped = CampaignData::from_observations(data.observations.clone());
        assert_eq!(wrapped.observations, data.observations);
        assert!(wrapped.hitlist.addrs.is_empty());
        assert_eq!(wrapped.syn_probes_sent, 0);
        assert_eq!(
            wrapped.finished_at,
            data.observations.iter().map(|o| o.timestamp).max().unwrap()
        );
        assert_eq!(
            CampaignData::from_observations(Vec::new()).finished_at,
            SimTime::ZERO
        );
    }

    #[test]
    fn campaign_interner_covers_every_observed_address_exactly_once() {
        let (_, data) = campaign_data();
        let distinct: std::collections::BTreeSet<IpAddr> =
            data.observations.iter().map(|o| o.addr).collect();
        assert_eq!(data.interner().len(), distinct.len());
        for obs in &data.observations {
            let id = data.addr_id(obs.addr).expect("observed address interned");
            assert_eq!(data.interner().addr(id), obs.addr);
        }
        assert_eq!(data.addr_id("203.0.113.99".parse().unwrap()), None);
        // from_observations builds the same id space for the same records.
        let wrapped = CampaignData::from_observations(data.observations.clone());
        assert_eq!(wrapped.interner().addrs(), data.interner().addrs());
    }

    #[test]
    fn with_defaults_respects_alias_threads() {
        // `with_defaults` takes its thread count from ALIAS_THREADS via
        // `alias_exec::threads_from_env`.  The parsing rule — valid values
        // taken verbatim; unset / 0 / garbage falling back to the available
        // parallelism — is asserted through the env-free seam
        // (`threads_from_value`), because mutating the environment while
        // sibling tests read it concurrently is UB on glibc.
        let fallback = alias_exec::available_parallelism();
        for (value, expected) in [
            (Some("3"), 3),
            (Some("0"), fallback),
            (Some("not-a-number"), fallback),
            (None, fallback),
        ] {
            assert_eq!(
                alias_exec::threads_from_value(value),
                expected,
                "ALIAS_THREADS={value:?}"
            );
        }
        // And `with_defaults` wires that env-derived value straight into
        // the campaign config (read-only env access: race-free).
        let internet = InternetBuilder::new(InternetConfig::tiny(404)).build();
        assert_eq!(
            ActiveCampaign::with_defaults(&internet).config().threads,
            alias_exec::threads_from_env()
        );
    }

    #[test]
    fn single_vp_campaign_misses_invisible_devices() {
        let internet = InternetBuilder::new(InternetConfig::tiny(404)).build();
        let single = ActiveCampaign::new(CampaignConfig::default()).run(&internet);
        let distributed = ActiveCampaign::new(CampaignConfig {
            vantage: VantageKind::Distributed,
            ..Default::default()
        })
        .run(&internet);
        assert!(
            single.address_count(ServiceProtocol::Ssh)
                < distributed.address_count(ServiceProtocol::Ssh)
        );
    }

    #[test]
    fn observation_addresses_are_really_responsive_in_ground_truth() {
        let (internet, data) = campaign_data();
        for obs in &data.observations {
            let (device_id, _) = internet
                .lookup(obs.addr)
                .expect("observed address must exist");
            let device = internet.device(device_id);
            let responding = match obs.protocol() {
                ServiceProtocol::Ssh => device.ssh_responding_addrs(),
                ServiceProtocol::Bgp => device.bgp_responding_addrs(),
                ServiceProtocol::Snmpv3 => device.snmp_responding_addrs(),
            };
            assert!(responding.contains(&obs.addr));
        }
    }
}
