//! The full active-measurement campaign.
//!
//! This module reproduces the paper's data-collection pipeline end to end:
//!
//! 1. ZMap SYN scan of the routed IPv4 space on ports 22 and 179,
//! 2. ZGrab2 service scans of the responsive addresses (SSH and BGP),
//! 3. an Internet-wide SNMPv3 engine-discovery scan,
//! 4. an IPv6 hitlist, SYN-scanned and service-scanned the same way,
//!
//! all from a single vantage point at a fixed simulated date.  The scan
//! loops emit straight into per-shard column chunks
//! ([`ShardColumns`], addresses interned as they
//! are observed), which the campaign splices into one columnar
//! [`ObservationStore`] — the [`CampaignData`] bundle the resolution
//! pipeline runs on.

use crate::hitlist::Ipv6Hitlist;
use crate::rate_probe::{RateProbeConfig, RateProber};
use crate::records::{DataSource, ObservationSink, ServiceObservation};
use crate::snmp::{SnmpScanConfig, SnmpScanner};
use crate::zgrab::{ZgrabConfig, ZgrabScanner};
use crate::zmap::{ZmapConfig, ZmapScanner};
use alias_intern::{AddrId, AddrInterner};
use alias_netsim::{Internet, ServiceProtocol, SimTime, VantageKind};
use alias_store::{ObservationRef, ObservationStore, ShardColumns};
use std::net::IpAddr;
use std::sync::Arc;

/// Configuration of a measurement campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The vantage point kind (the paper's own scans are single-VP).
    pub vantage: VantageKind,
    /// Campaign start (simulated time).
    pub start: SimTime,
    /// SYN scan rate in packets per second.
    pub syn_rate_pps: f64,
    /// Application-layer scan rate in connections per second.
    pub grab_rate_pps: f64,
    /// IPv6 hitlist coverage of truly active addresses.
    pub hitlist_coverage: f64,
    /// Fraction of stale entries added to the hitlist.
    pub hitlist_stale_fraction: f64,
    /// Seed for permutations and the hitlist sample.
    pub seed: u64,
    /// Worker threads for the scan phases (1 = serial).  The campaign
    /// output is byte-identical for any value — see `alias-exec`'s
    /// shard-reduce contract.
    pub threads: usize,
    /// ICMP rate-limiting probe phase ([`RateProber`]), or `None` to skip
    /// it.  `None` by default so campaigns that predate the eighth
    /// technique — and every byte of their output — are unchanged.
    pub rate_probe: Option<RateProbeConfig>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            vantage: VantageKind::SingleVp,
            start: SimTime::ZERO,
            syn_rate_pps: 200_000.0,
            grab_rate_pps: 50_000.0,
            hitlist_coverage: 0.72,
            hitlist_stale_fraction: 0.15,
            seed: 0xa11a5,
            threads: 1,
            rate_probe: None,
        }
    }
}

/// The output of a campaign: a columnar [`ObservationStore`] of every
/// observation (SSH, BGP, SNMPv3; IPv4 and IPv6) plus campaign metadata.
#[derive(Debug, Clone)]
pub struct CampaignData {
    /// All observations, stored column-wise with every observed address
    /// interned to a dense [`AddrId`] in first-observation order.
    store: ObservationStore,
    /// The IPv6 hitlist used.
    pub hitlist: Ipv6Hitlist,
    /// Simulated time the campaign finished.
    pub finished_at: SimTime,
    /// Total SYN probes sent during discovery.
    pub syn_probes_sent: u64,
}

impl CampaignData {
    /// Bundle a finished store with campaign metadata.
    fn new(
        store: ObservationStore,
        hitlist: Ipv6Hitlist,
        finished_at: SimTime,
        syn_probes_sent: u64,
    ) -> Self {
        CampaignData {
            store,
            hitlist,
            finished_at,
            syn_probes_sent,
        }
    }

    /// Wrap pre-collected observations (a Censys snapshot, a union of data
    /// sources, a replayed trace) so they can be fed to consumers of
    /// campaign data — most notably `alias-resolve`'s techniques — without
    /// having run a scan.  The hitlist is empty and no SYN probes are
    /// accounted; `finished_at` is the latest observation timestamp.
    pub fn from_observations(observations: Vec<ServiceObservation>) -> Self {
        let finished_at = observations
            .iter()
            .map(|o| o.timestamp)
            .max()
            .unwrap_or(SimTime::ZERO);
        Self::new(
            ObservationStore::from_observations(observations),
            Ipv6Hitlist { addrs: Vec::new() },
            finished_at,
            0,
        )
    }

    /// Wrap an already-columnar store as campaign data (same conventions as
    /// [`Self::from_observations`]).
    pub fn from_store(store: ObservationStore) -> Self {
        let finished_at = store
            .timestamps()
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO);
        Self::new(store, Ipv6Hitlist { addrs: Vec::new() }, finished_at, 0)
    }

    /// The columnar observation store.
    pub fn store(&self) -> &ObservationStore {
        &self.store
    }

    /// Consume the campaign data, keeping only the store.
    pub fn into_store(self) -> ObservationStore {
        self.store
    }

    /// Number of observations in the campaign.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the campaign recorded no observations.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The campaign's address interner: every observed address mapped to a
    /// dense [`AddrId`], in first-observation order.  Shared behind an
    /// `Arc` so techniques and reports can reference the id space without
    /// copying it.
    pub fn interner(&self) -> &Arc<AddrInterner> {
        self.store.interner()
    }

    /// The dense id of an observed address ([`None`] for addresses the
    /// campaign never observed).
    pub fn addr_id(&self, addr: IpAddr) -> Option<AddrId> {
        self.store.addr_id(addr)
    }

    /// Iterator over the observations of one protocol, as borrowed rows.
    /// The selection pass reads only the one-byte protocol column.
    pub fn observations_for(
        &self,
        protocol: ServiceProtocol,
    ) -> impl Iterator<Item = ObservationRef<'_>> {
        let view = self.store.select(Some(protocol.into()), None);
        (0..view.len()).map(move |i| view.get(i))
    }

    /// Stream every observation into a sink, in campaign order (rows are
    /// materialised one at a time — the compatibility boundary for
    /// row-based consumers).
    pub fn stream_into(&self, sink: &mut dyn ObservationSink) {
        for row in 0..self.store.len() {
            sink.accept(&self.store.get(row).to_observation());
        }
    }

    /// Materialise every observation as rows, in campaign order (the
    /// compatibility boundary; payloads are cloned).
    pub fn to_observations(&self) -> Vec<ServiceObservation> {
        self.store.to_observations()
    }

    /// Number of distinct responsive addresses for a protocol.
    pub fn address_count(&self, protocol: ServiceProtocol) -> usize {
        self.store.address_count(protocol)
    }
}

/// Runs the paper's active-measurement pipeline against a simulated Internet.
#[derive(Debug, Clone)]
pub struct ActiveCampaign {
    config: CampaignConfig,
}

impl ActiveCampaign {
    /// Create a campaign with the given configuration.
    pub fn new(config: CampaignConfig) -> Self {
        ActiveCampaign { config }
    }

    /// Create a campaign with default settings, taking the hitlist coverage
    /// from the Internet's own configuration and the worker-thread count
    /// from the `ALIAS_THREADS` environment variable (unset, empty, `0` or
    /// unparsable values fall back to the available parallelism — see
    /// [`alias_exec::threads_from_env`]).  The thread count is a pure
    /// performance knob and never changes the campaign output.
    pub fn with_defaults(internet: &Internet) -> Self {
        let mut config = CampaignConfig::default();
        config.hitlist_coverage = internet.config().visibility.hitlist_coverage;
        config.threads = alias_exec::threads_from_env();
        Self::new(config)
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Set the worker-thread count for the scan phases (builder style).
    /// A pure performance knob: the campaign output is byte-identical for
    /// any value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Run the campaign.
    ///
    /// With `config.threads > 1` each scan phase runs as shard workers over
    /// disjoint slices of its address space, emitting into per-shard column
    /// chunks; splicing the chunks in shard order makes the store
    /// (observations, timestamps, time-dependent payload bytes *and* the
    /// interned id order) byte-identical to the serial run for any thread
    /// count.
    pub fn run(&self, internet: &Internet) -> CampaignData {
        let cfg = &self.config;
        let vantage = cfg.vantage;
        let threads = cfg.threads.max(1);
        let mut store = ObservationStore::new();

        /// Splice a phase's shard chunks onto the store, in shard order,
        /// returning the clock after the phase (the timestamp of its last
        /// observation, or `now` if the phase observed nothing).
        fn absorb_phase(
            store: &mut ObservationStore,
            shards: Vec<ShardColumns>,
            mut now: SimTime,
        ) -> SimTime {
            for shard in shards {
                if let Some(last) = shard.last_timestamp() {
                    now = last;
                }
                store.absorb_shard(shard);
            }
            now
        }

        // The campaign driver is serial (only the scan loops inside each
        // phase shard out), so the phase events land in a fixed order and
        // stay inside the deterministic snapshot subset.
        let _campaign_span = alias_obs::span("campaign");

        // Phase 1: IPv4 SYN discovery on ports 22 and 179.
        alias_obs::event("campaign:syn_v4");
        let zmap = ZmapScanner::new(ZmapConfig {
            ports: vec![22, 179],
            rate_pps: cfg.syn_rate_pps,
            seed: cfg.seed,
        });
        let syn = {
            let _span = alias_obs::span("campaign/syn_v4");
            zmap.scan_ipv4_sharded(internet, vantage, cfg.start, threads)
        };
        let mut now = syn.finished_at;

        // Phase 2: service scans of the responsive addresses.
        alias_obs::event("campaign:grab_v4");
        let zgrab = ZgrabScanner::new(ZgrabConfig {
            rate_pps: cfg.grab_rate_pps,
            source: DataSource::Active,
        });
        {
            let _span = alias_obs::span("campaign/grab_v4");
            now = absorb_phase(
                &mut store,
                zgrab.grab_columns_sharded(
                    internet,
                    syn.on_port(22),
                    22,
                    ServiceProtocol::Ssh,
                    vantage,
                    now,
                    threads,
                ),
                now,
            );
            now = absorb_phase(
                &mut store,
                zgrab.grab_columns_sharded(
                    internet,
                    syn.on_port(179),
                    179,
                    ServiceProtocol::Bgp,
                    vantage,
                    now,
                    threads,
                ),
                now,
            );
        }

        // Phase 3: Internet-wide SNMPv3 engine discovery.
        alias_obs::event("campaign:snmp_v4");
        let snmp = SnmpScanner::new(SnmpScanConfig {
            rate_pps: cfg.syn_rate_pps,
            source: DataSource::Active,
        });
        {
            let _span = alias_obs::span("campaign/snmp_v4");
            now = absorb_phase(
                &mut store,
                snmp.scan_routed_space_columns_sharded(internet, vantage, now, threads),
                now,
            );
        }

        // Phase 4: IPv6 — hitlist-driven discovery and service scans.
        alias_obs::event("campaign:ipv6");
        let hitlist = Ipv6Hitlist::generate(
            internet,
            cfg.hitlist_coverage,
            cfg.hitlist_stale_fraction,
            cfg.seed,
        );
        let v6_syn;
        {
            let _span = alias_obs::span("campaign/ipv6");
            v6_syn = zmap.scan_ipv6_list_sharded(internet, &hitlist.addrs, vantage, now, threads);
            now = v6_syn.finished_at;
            now = absorb_phase(
                &mut store,
                zgrab.grab_columns_sharded(
                    internet,
                    v6_syn.on_port(22),
                    22,
                    ServiceProtocol::Ssh,
                    vantage,
                    now,
                    threads,
                ),
                now,
            );
            now = absorb_phase(
                &mut store,
                zgrab.grab_columns_sharded(
                    internet,
                    v6_syn.on_port(179),
                    179,
                    ServiceProtocol::Bgp,
                    vantage,
                    now,
                    threads,
                ),
                now,
            );
            let v6_targets: Vec<IpAddr> = hitlist.addrs.iter().map(|&a| IpAddr::V6(a)).collect();
            now = absorb_phase(
                &mut store,
                snmp.scan_columns_sharded(internet, &v6_targets, vantage, now, threads),
                now,
            );
        }

        // Phase 5 (opt-in): ICMP rate-limiting escalation bursts against
        // the echo-responsive population.
        if let Some(rate_cfg) = &cfg.rate_probe {
            alias_obs::event("campaign:rate_probe");
            let _span = alias_obs::span("campaign/rate_probe");
            let prober = RateProber::new(rate_cfg.clone());
            let targets =
                prober.discover_targets_sharded(internet, &hitlist.addrs, vantage, now, threads);
            now = absorb_phase(
                &mut store,
                prober.probe_columns_sharded(internet, &targets, vantage, now, threads),
                now,
            );
        }

        CampaignData::new(store, hitlist, now, syn.probes_sent + v6_syn.probes_sent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::{InternetBuilder, InternetConfig};

    fn campaign_data() -> (Internet, CampaignData) {
        let internet = InternetBuilder::new(InternetConfig::tiny(404)).build();
        let campaign = ActiveCampaign::with_defaults(&internet);
        let data = campaign.run(&internet);
        (internet, data)
    }

    #[test]
    fn campaign_covers_all_three_protocols_and_both_families() {
        let (_, data) = campaign_data();
        assert!(data.observations_for(ServiceProtocol::Ssh).next().is_some());
        assert!(data.observations_for(ServiceProtocol::Bgp).next().is_some());
        assert!(data
            .observations_for(ServiceProtocol::Snmpv3)
            .next()
            .is_some());
        let addrs = data.store().interner().addrs();
        assert!(addrs.iter().any(|a| a.is_ipv6()));
        assert!(addrs.iter().any(|a| !a.is_ipv6()));
        assert!(data.syn_probes_sent > 0);
        assert!(data.finished_at > SimTime::ZERO);
        assert!(!data.is_empty());
    }

    #[test]
    fn every_observation_is_from_the_active_source_with_asn() {
        let (_, data) = campaign_data();
        let view = data.store().select(None, None);
        assert_eq!(view.len(), data.len());
        for obs in view.iter() {
            assert_eq!(obs.source, DataSource::Active);
            assert!(obs.asn.is_some(), "missing ASN annotation for {obs:?}");
            assert!(obs.is_default_port());
        }
    }

    #[test]
    fn sharded_campaign_is_byte_identical_to_serial() {
        // The determinism guarantee of the execution engine: for several
        // seeds and thread counts, the whole columnar store (addresses,
        // interned id order, timestamps, time-dependent payload bytes) and
        // the campaign metadata match the serial run exactly.
        for seed in [404u64, 2023] {
            let internet = InternetBuilder::new(InternetConfig::tiny(seed)).build();
            let serial = ActiveCampaign::new(CampaignConfig {
                seed,
                ..Default::default()
            })
            .run(&internet);
            for threads in [2usize, 7] {
                let sharded = ActiveCampaign::new(CampaignConfig {
                    seed,
                    threads,
                    ..Default::default()
                })
                .run(&internet);
                assert_eq!(
                    sharded.store(),
                    serial.store(),
                    "seed={seed} threads={threads}"
                );
                // The absorbed store is structurally coherent, not just
                // equal to the serial one.  The validators only exist in
                // debug builds or under the forwarded `validate` feature,
                // so release runs of the `--ignored` sweeps still compile.
                #[cfg(any(debug_assertions, feature = "validate"))]
                assert_eq!(
                    sharded.store().validate(),
                    Ok(()),
                    "seed={seed} threads={threads}"
                );
                assert_eq!(sharded.hitlist.addrs, serial.hitlist.addrs);
                assert_eq!(sharded.finished_at, serial.finished_at);
                assert_eq!(sharded.syn_probes_sent, serial.syn_probes_sent);
            }
        }
    }

    #[test]
    #[ignore = "large-scale (10× paper) identity sweep, ~a minute of wall-clock; \
                run with `cargo test --release -p alias-scan -- --ignored` in a \
                dedicated job — CI keeps the tiny- and paper-scale parity tests"]
    fn sharded_campaign_is_byte_identical_to_serial_at_large_scale() {
        // The same guarantee as `sharded_campaign_is_byte_identical_to_serial`
        // at the `ALIAS_SCALE=large` tier: the scratch-pool reuse, batched
        // schedule fast-forwards and hardware-capped shard counts must not
        // leak into the output even when the routed space runs to millions
        // of probes.
        use alias_netsim::ScalePreset;
        let seed = 20230418;
        let internet =
            InternetBuilder::new(InternetConfig::preset(ScalePreset::Large, seed)).build();
        let serial = ActiveCampaign::new(CampaignConfig {
            seed,
            ..Default::default()
        })
        .run(&internet);
        for threads in [2usize, 7] {
            let sharded = ActiveCampaign::new(CampaignConfig {
                seed,
                threads,
                ..Default::default()
            })
            .run(&internet);
            assert_eq!(sharded.store(), serial.store(), "threads={threads}");
            assert_eq!(sharded.hitlist.addrs, serial.hitlist.addrs);
            assert_eq!(sharded.finished_at, serial.finished_at);
            assert_eq!(sharded.syn_probes_sent, serial.syn_probes_sent);
        }
    }

    #[test]
    fn observations_for_matches_the_row_filter() {
        let (_, data) = campaign_data();
        let rows = data.to_observations();
        for protocol in [
            ServiceProtocol::Ssh,
            ServiceProtocol::Bgp,
            ServiceProtocol::Snmpv3,
        ] {
            let streamed: Vec<ServiceObservation> = data
                .observations_for(protocol)
                .map(|r| r.to_observation())
                .collect();
            let filtered: Vec<ServiceObservation> = rows
                .iter()
                .filter(|o| o.protocol() == protocol)
                .cloned()
                .collect();
            assert_eq!(streamed, filtered);
        }
    }

    #[test]
    fn stream_into_visits_every_observation_in_order() {
        struct Collector(Vec<ServiceObservation>);
        impl ObservationSink for Collector {
            fn accept(&mut self, observation: &ServiceObservation) {
                self.0.push(observation.clone());
            }
        }
        let (_, data) = campaign_data();
        let mut sink = Collector(Vec::new());
        data.stream_into(&mut sink);
        assert_eq!(sink.0, data.to_observations());
    }

    #[test]
    fn from_observations_wraps_pre_collected_records() {
        let (_, data) = campaign_data();
        let rows = data.to_observations();
        let wrapped = CampaignData::from_observations(rows.clone());
        assert_eq!(wrapped.store(), data.store());
        assert!(wrapped.hitlist.addrs.is_empty());
        assert_eq!(wrapped.syn_probes_sent, 0);
        assert_eq!(
            wrapped.finished_at,
            rows.iter().map(|o| o.timestamp).max().unwrap()
        );
        assert_eq!(
            CampaignData::from_observations(Vec::new()).finished_at,
            SimTime::ZERO
        );
        // The store-wrapping constructor agrees with the row one.
        let from_store = CampaignData::from_store(data.store().clone());
        assert_eq!(from_store.store(), wrapped.store());
        assert_eq!(from_store.finished_at, wrapped.finished_at);
    }

    #[test]
    fn campaign_interner_covers_every_observed_address_exactly_once() {
        let (_, data) = campaign_data();
        let mut distinct: Vec<IpAddr> = data.to_observations().iter().map(|o| o.addr).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(data.interner().len(), distinct.len());
        for row in 0..data.len() {
            let obs = data.store().get(row);
            let id = data.addr_id(obs.addr).expect("observed address interned");
            assert_eq!(id, obs.addr_id);
            assert_eq!(data.interner().addr(id), obs.addr);
        }
        assert_eq!(data.addr_id("203.0.113.99".parse().unwrap()), None);
        // from_observations builds the same id space for the same records.
        let wrapped = CampaignData::from_observations(data.to_observations());
        assert_eq!(wrapped.interner().addrs(), data.interner().addrs());
    }

    #[test]
    fn with_defaults_respects_alias_threads() {
        // `with_defaults` takes its thread count from ALIAS_THREADS via
        // `alias_exec::threads_from_env`.  The parsing rule — valid values
        // taken verbatim; unset / 0 / garbage falling back to the available
        // parallelism — is asserted through the env-free seam
        // (`threads_from_value`), because mutating the environment while
        // sibling tests read it concurrently is UB on glibc.
        let fallback = alias_exec::available_parallelism();
        for (value, expected) in [
            (Some("3"), 3),
            (Some("0"), fallback),
            (Some("not-a-number"), fallback),
            (None, fallback),
        ] {
            assert_eq!(
                alias_exec::threads_from_value(value),
                expected,
                "ALIAS_THREADS={value:?}"
            );
        }
        // And `with_defaults` wires that env-derived value straight into
        // the campaign config (read-only env access: race-free).
        let internet = InternetBuilder::new(InternetConfig::tiny(404)).build();
        assert_eq!(
            ActiveCampaign::with_defaults(&internet).config().threads,
            alias_exec::threads_from_env()
        );
    }

    #[test]
    fn rate_probe_phase_is_gated_and_deterministic_across_threads() {
        // Campaigns without the opt-in record no rate observations; with
        // it, the full five-phase store stays byte-identical for any
        // thread count (the satellite determinism contract for the new
        // phase), and rate observations appear for both populations.
        use crate::rate_probe::RateProbeConfig;
        for seed in [404u64, 2023] {
            let mut net_config = InternetConfig::tiny(seed);
            net_config.devices.silent_routers = 8;
            let internet = InternetBuilder::new(net_config).build();
            let base = ActiveCampaign::new(CampaignConfig {
                seed,
                ..Default::default()
            })
            .run(&internet);
            assert!(base
                .observations_for(ServiceProtocol::IcmpRateLimit)
                .next()
                .is_none());

            let serial = ActiveCampaign::new(CampaignConfig {
                seed,
                rate_probe: Some(RateProbeConfig::default()),
                ..Default::default()
            })
            .run(&internet);
            assert!(serial
                .observations_for(ServiceProtocol::IcmpRateLimit)
                .next()
                .is_some());
            // The first four phases are untouched by the opt-in.
            for protocol in [
                ServiceProtocol::Ssh,
                ServiceProtocol::Bgp,
                ServiceProtocol::Snmpv3,
            ] {
                let with_rate: Vec<ServiceObservation> = serial
                    .observations_for(protocol)
                    .map(|r| r.to_observation())
                    .collect();
                let without: Vec<ServiceObservation> = base
                    .observations_for(protocol)
                    .map(|r| r.to_observation())
                    .collect();
                assert_eq!(with_rate, without, "seed={seed} {protocol:?}");
            }
            for threads in [2usize, 7] {
                let sharded = ActiveCampaign::new(CampaignConfig {
                    seed,
                    threads,
                    rate_probe: Some(RateProbeConfig::default()),
                    ..Default::default()
                })
                .run(&internet);
                assert_eq!(
                    sharded.store(),
                    serial.store(),
                    "seed={seed} threads={threads}"
                );
                #[cfg(any(debug_assertions, feature = "validate"))]
                assert_eq!(sharded.store().validate(), Ok(()));
                assert_eq!(sharded.finished_at, serial.finished_at);
            }
        }
    }

    #[test]
    fn single_vp_campaign_misses_invisible_devices() {
        let internet = InternetBuilder::new(InternetConfig::tiny(404)).build();
        let single = ActiveCampaign::new(CampaignConfig::default()).run(&internet);
        let distributed = ActiveCampaign::new(CampaignConfig {
            vantage: VantageKind::Distributed,
            ..Default::default()
        })
        .run(&internet);
        assert!(
            single.address_count(ServiceProtocol::Ssh)
                < distributed.address_count(ServiceProtocol::Ssh)
        );
    }

    #[test]
    fn observation_addresses_are_really_responsive_in_ground_truth() {
        let (internet, data) = campaign_data();
        for obs in data.store().select(None, None).iter() {
            let (device_id, _) = internet
                .lookup(obs.addr)
                .expect("observed address must exist");
            let device = internet.device(device_id);
            let responding = match obs.protocol() {
                ServiceProtocol::Ssh => device.ssh_responding_addrs(),
                ServiceProtocol::Bgp => device.bgp_responding_addrs(),
                ServiceProtocol::Snmpv3 => device.snmp_responding_addrs(),
                // Rate observations need no identifier service — only an
                // echo-responsive interface of the device.
                ServiceProtocol::IcmpRateLimit => {
                    assert!(device.responds_to_ping);
                    assert!(device.interface_index(obs.addr).is_some());
                    continue;
                }
            };
            assert!(responding.contains(&obs.addr));
        }
    }
}
