//! The full active-measurement campaign.
//!
//! This module reproduces the paper's data-collection pipeline end to end:
//!
//! 1. ZMap SYN scan of the routed IPv4 space on ports 22 and 179,
//! 2. ZGrab2 service scans of the responsive addresses (SSH and BGP),
//! 3. an Internet-wide SNMPv3 engine-discovery scan,
//! 4. an IPv6 hitlist, SYN-scanned and service-scanned the same way,
//!
//! all from a single vantage point at a fixed simulated date, producing one
//! [`CampaignData`] bundle of [`ServiceObservation`] records.

use crate::hitlist::Ipv6Hitlist;
use crate::records::{DataSource, ServiceObservation};
use crate::snmp::{SnmpScanConfig, SnmpScanner};
use crate::zgrab::{ZgrabConfig, ZgrabScanner};
use crate::zmap::{ZmapConfig, ZmapScanner};
use alias_netsim::{Internet, ServiceProtocol, SimTime, VantageKind};
use std::net::IpAddr;

/// Configuration of a measurement campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The vantage point kind (the paper's own scans are single-VP).
    pub vantage: VantageKind,
    /// Campaign start (simulated time).
    pub start: SimTime,
    /// SYN scan rate in packets per second.
    pub syn_rate_pps: f64,
    /// Application-layer scan rate in connections per second.
    pub grab_rate_pps: f64,
    /// IPv6 hitlist coverage of truly active addresses.
    pub hitlist_coverage: f64,
    /// Fraction of stale entries added to the hitlist.
    pub hitlist_stale_fraction: f64,
    /// Seed for permutations and the hitlist sample.
    pub seed: u64,
    /// Worker threads for the scan phases (1 = serial).  The campaign
    /// output is byte-identical for any value — see `alias-exec`'s
    /// shard-reduce contract.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            vantage: VantageKind::SingleVp,
            start: SimTime::ZERO,
            syn_rate_pps: 200_000.0,
            grab_rate_pps: 50_000.0,
            hitlist_coverage: 0.72,
            hitlist_stale_fraction: 0.15,
            seed: 0xa11a5,
            threads: 1,
        }
    }
}

/// The output of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignData {
    /// All observations (SSH, BGP, SNMPv3; IPv4 and IPv6).
    pub observations: Vec<ServiceObservation>,
    /// The IPv6 hitlist used.
    pub hitlist: Ipv6Hitlist,
    /// Simulated time the campaign finished.
    pub finished_at: SimTime,
    /// Total SYN probes sent during discovery.
    pub syn_probes_sent: u64,
}

impl CampaignData {
    /// Observations for one protocol.
    pub fn for_protocol(&self, protocol: ServiceProtocol) -> Vec<&ServiceObservation> {
        self.observations
            .iter()
            .filter(|o| o.protocol() == protocol)
            .collect()
    }

    /// Number of distinct responsive addresses for a protocol.
    pub fn address_count(&self, protocol: ServiceProtocol) -> usize {
        let mut addrs: Vec<IpAddr> = self
            .observations
            .iter()
            .filter(|o| o.protocol() == protocol)
            .map(|o| o.addr)
            .collect();
        addrs.sort();
        addrs.dedup();
        addrs.len()
    }
}

/// Runs the paper's active-measurement pipeline against a simulated Internet.
#[derive(Debug, Clone)]
pub struct ActiveCampaign {
    config: CampaignConfig,
}

impl ActiveCampaign {
    /// Create a campaign with the given configuration.
    pub fn new(config: CampaignConfig) -> Self {
        ActiveCampaign { config }
    }

    /// Create a campaign with default settings, taking the hitlist coverage
    /// from the Internet's own configuration.
    pub fn with_defaults(internet: &Internet) -> Self {
        let mut config = CampaignConfig::default();
        config.hitlist_coverage = internet.config().visibility.hitlist_coverage;
        Self::new(config)
    }

    /// Set the worker-thread count for the scan phases (builder style).
    /// A pure performance knob: the campaign output is byte-identical for
    /// any value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Run the campaign.
    ///
    /// With `config.threads > 1` each scan phase runs as shard workers over
    /// disjoint slices of its address space; the observations (including
    /// timestamps and time-dependent payload bytes) are byte-identical to
    /// the serial run for any thread count.
    pub fn run(&self, internet: &Internet) -> CampaignData {
        let cfg = &self.config;
        let vantage = cfg.vantage;
        let threads = cfg.threads.max(1);
        let mut observations = Vec::new();

        // Phase 1: IPv4 SYN discovery on ports 22 and 179.
        let zmap = ZmapScanner::new(ZmapConfig {
            ports: vec![22, 179],
            rate_pps: cfg.syn_rate_pps,
            seed: cfg.seed,
        });
        let syn = zmap.scan_ipv4_sharded(internet, vantage, cfg.start, threads);
        let mut now = syn.finished_at;

        // Phase 2: service scans of the responsive addresses.
        let zgrab = ZgrabScanner::new(ZgrabConfig {
            rate_pps: cfg.grab_rate_pps,
            source: DataSource::Active,
        });
        let ssh_obs = zgrab.grab_sharded(
            internet,
            syn.on_port(22),
            22,
            ServiceProtocol::Ssh,
            vantage,
            now,
            threads,
        );
        now = ssh_obs.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(ssh_obs);
        let bgp_obs = zgrab.grab_sharded(
            internet,
            syn.on_port(179),
            179,
            ServiceProtocol::Bgp,
            vantage,
            now,
            threads,
        );
        now = bgp_obs.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(bgp_obs);

        // Phase 3: Internet-wide SNMPv3 engine discovery.
        let snmp = SnmpScanner::new(SnmpScanConfig {
            rate_pps: cfg.syn_rate_pps,
            source: DataSource::Active,
        });
        let snmp_obs = snmp.scan_routed_space_sharded(internet, vantage, now, threads);
        now = snmp_obs.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(snmp_obs);

        // Phase 4: IPv6 — hitlist-driven discovery and service scans.
        let hitlist = Ipv6Hitlist::generate(
            internet,
            cfg.hitlist_coverage,
            cfg.hitlist_stale_fraction,
            cfg.seed,
        );
        let v6_syn = zmap.scan_ipv6_list_sharded(internet, &hitlist.addrs, vantage, now, threads);
        now = v6_syn.finished_at;
        let v6_ssh = zgrab.grab_sharded(
            internet,
            v6_syn.on_port(22),
            22,
            ServiceProtocol::Ssh,
            vantage,
            now,
            threads,
        );
        now = v6_ssh.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(v6_ssh);
        let v6_bgp = zgrab.grab_sharded(
            internet,
            v6_syn.on_port(179),
            179,
            ServiceProtocol::Bgp,
            vantage,
            now,
            threads,
        );
        now = v6_bgp.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(v6_bgp);
        let v6_targets: Vec<IpAddr> = hitlist.addrs.iter().map(|&a| IpAddr::V6(a)).collect();
        let v6_snmp = snmp.scan_sharded(internet, &v6_targets, vantage, now, threads);
        now = v6_snmp.last().map(|o| o.timestamp).unwrap_or(now);
        observations.extend(v6_snmp);

        CampaignData {
            observations,
            hitlist,
            finished_at: now,
            syn_probes_sent: syn.probes_sent + v6_syn.probes_sent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::{InternetBuilder, InternetConfig};

    fn campaign_data() -> (Internet, CampaignData) {
        let internet = InternetBuilder::new(InternetConfig::tiny(404)).build();
        let campaign = ActiveCampaign::with_defaults(&internet);
        let data = campaign.run(&internet);
        (internet, data)
    }

    #[test]
    fn campaign_covers_all_three_protocols_and_both_families() {
        let (_, data) = campaign_data();
        assert!(!data.for_protocol(ServiceProtocol::Ssh).is_empty());
        assert!(!data.for_protocol(ServiceProtocol::Bgp).is_empty());
        assert!(!data.for_protocol(ServiceProtocol::Snmpv3).is_empty());
        assert!(data.observations.iter().any(|o| o.is_ipv6()));
        assert!(data.observations.iter().any(|o| !o.is_ipv6()));
        assert!(data.syn_probes_sent > 0);
        assert!(data.finished_at > SimTime::ZERO);
    }

    #[test]
    fn every_observation_is_from_the_active_source_with_asn() {
        let (_, data) = campaign_data();
        for obs in &data.observations {
            assert_eq!(obs.source, DataSource::Active);
            assert!(obs.asn.is_some(), "missing ASN annotation for {obs:?}");
            assert!(obs.is_default_port());
        }
    }

    #[test]
    fn sharded_campaign_is_byte_identical_to_serial() {
        // The determinism guarantee of the execution engine: for several
        // seeds and thread counts, every observation (addresses, order,
        // timestamps, time-dependent payload bytes) and the campaign
        // metadata match the serial run exactly.
        for seed in [404u64, 2023] {
            let internet = InternetBuilder::new(InternetConfig::tiny(seed)).build();
            let serial = ActiveCampaign::new(CampaignConfig {
                seed,
                ..Default::default()
            })
            .run(&internet);
            for threads in [2usize, 7] {
                let sharded = ActiveCampaign::new(CampaignConfig {
                    seed,
                    threads,
                    ..Default::default()
                })
                .run(&internet);
                assert_eq!(
                    sharded.observations, serial.observations,
                    "seed={seed} threads={threads}"
                );
                assert_eq!(sharded.hitlist.addrs, serial.hitlist.addrs);
                assert_eq!(sharded.finished_at, serial.finished_at);
                assert_eq!(sharded.syn_probes_sent, serial.syn_probes_sent);
            }
        }
    }

    #[test]
    fn single_vp_campaign_misses_invisible_devices() {
        let internet = InternetBuilder::new(InternetConfig::tiny(404)).build();
        let single = ActiveCampaign::new(CampaignConfig::default()).run(&internet);
        let distributed = ActiveCampaign::new(CampaignConfig {
            vantage: VantageKind::Distributed,
            ..Default::default()
        })
        .run(&internet);
        assert!(
            single.address_count(ServiceProtocol::Ssh)
                < distributed.address_count(ServiceProtocol::Ssh)
        );
    }

    #[test]
    fn observation_addresses_are_really_responsive_in_ground_truth() {
        let (internet, data) = campaign_data();
        for obs in &data.observations {
            let (device_id, _) = internet
                .lookup(obs.addr)
                .expect("observed address must exist");
            let device = internet.device(device_id);
            let responding = match obs.protocol() {
                ServiceProtocol::Ssh => device.ssh_responding_addrs(),
                ServiceProtocol::Bgp => device.bgp_responding_addrs(),
                ServiceProtocol::Snmpv3 => device.snmp_responding_addrs(),
            };
            assert!(responding.contains(&obs.addr));
        }
    }
}
