//! Probe pacing in simulated time.
//!
//! The paper's ethics section commits to at most one probe per target per
//! second and an overall probe rate that does not stress networks.  The
//! scanners honour the same discipline against the simulator: a token bucket
//! paces probes and, as a side effect, determines how long (in simulated
//! time) a measurement campaign takes — which in turn interacts with churn.

use alias_netsim::SimTime;

/// A token bucket that hands out send times.
///
/// Internally the bucket keeps fractional-millisecond state so that rates
/// well above 1000 probes/second are honoured even though [`SimTime`] has
/// millisecond granularity.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Sustained rate in probes per second.
    rate_pps: f64,
    /// Maximum burst size in probes.
    capacity: f64,
    /// Currently available tokens.
    tokens: f64,
    /// Last accounting instant, in fractional milliseconds.
    last_ms: f64,
}

impl TokenBucket {
    /// Create a bucket with the given sustained rate and burst capacity.
    ///
    /// # Panics
    /// Panics if `rate_pps` is not strictly positive.
    pub fn new(rate_pps: f64, capacity: f64, start: SimTime) -> Self {
        assert!(rate_pps > 0.0, "probe rate must be positive");
        TokenBucket {
            rate_pps,
            capacity: capacity.max(1.0),
            tokens: capacity.max(1.0),
            last_ms: start.as_millis() as f64,
        }
    }

    /// The sustained rate in probes per second.
    pub fn rate_pps(&self) -> f64 {
        self.rate_pps
    }

    /// Account for one probe and return the simulated time at which it is
    /// sent.  Time never goes backwards; if the bucket is empty the send
    /// time is pushed into the future.
    pub fn acquire(&mut self, now: SimTime) -> SimTime {
        let now_ms = (now.as_millis() as f64).max(self.last_ms);
        // Refill for the elapsed interval.
        let elapsed_secs = (now_ms - self.last_ms) / 1_000.0;
        self.tokens = (self.tokens + elapsed_secs * self.rate_pps).min(self.capacity);
        self.last_ms = now_ms;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            SimTime(now_ms.floor() as u64)
        } else {
            let wait_ms = (1.0 - self.tokens) / self.rate_pps * 1_000.0;
            self.last_ms = now_ms + wait_ms;
            self.tokens = 0.0;
            SimTime(self.last_ms.ceil() as u64)
        }
    }

    /// Time at which `count` probes finish when sent back to back starting
    /// from `start` (convenience for estimating campaign durations).
    pub fn duration_for(rate_pps: f64, count: u64) -> SimTime {
        SimTime(((count as f64 / rate_pps) * 1_000.0).ceil() as u64)
    }

    /// Replay `probes` acquires, feeding each send time back as the next
    /// call's `now` — exactly the pacing loop every scanner runs.  Returns
    /// the last send time (`now` unchanged when `probes == 0`).
    ///
    /// This is the shard fast-forward: cloning a bucket and advancing it to
    /// a shard's first probe index reproduces, probe for probe, the
    /// timestamps the serial scan would have assigned to that shard.
    pub fn advance(&mut self, now: SimTime, probes: u64) -> SimTime {
        let mut now = now;
        for _ in 0..probes {
            now = self.acquire(now);
        }
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_pacing() {
        let start = SimTime::ZERO;
        let mut bucket = TokenBucket::new(10.0, 2.0, start);
        // Two probes ride the burst capacity.
        assert_eq!(bucket.acquire(start), start);
        assert_eq!(bucket.acquire(start), start);
        // The third waits ~100 ms.
        let third = bucket.acquire(start);
        assert!(third.as_millis() >= 100, "third probe at {third:?}");
        // The fourth waits ~100 ms more.
        let fourth = bucket.acquire(start);
        assert!(fourth.as_millis() >= third.as_millis() + 100);
    }

    #[test]
    fn refill_over_time() {
        let mut bucket = TokenBucket::new(10.0, 1.0, SimTime::ZERO);
        let _ = bucket.acquire(SimTime::ZERO);
        // After one second the bucket has refilled.
        let send = bucket.acquire(SimTime::from_secs(1));
        assert_eq!(send, SimTime::from_secs(1));
    }

    #[test]
    fn send_times_never_regress() {
        let mut bucket = TokenBucket::new(100.0, 1.0, SimTime::ZERO);
        let mut last = SimTime::ZERO;
        for i in 0..500u64 {
            // Caller time oscillates; send times must still be monotone.
            let now = SimTime(if i % 2 == 0 { i } else { i / 2 });
            let at = bucket.acquire(now);
            assert!(at >= last);
            last = at;
        }
    }

    #[test]
    fn sustained_rate_is_respected() {
        let mut bucket = TokenBucket::new(1_000.0, 10.0, SimTime::ZERO);
        let mut last = SimTime::ZERO;
        for _ in 0..5_000 {
            last = bucket.acquire(last);
        }
        // 5000 probes at 1000 pps should take ~5 simulated seconds.
        assert!(last.as_secs() >= 4 && last.as_secs() <= 6, "took {last:?}");
    }

    #[test]
    fn advance_matches_the_manual_acquire_loop() {
        for (rate, capacity, probes) in [(10.0, 2.0, 25u64), (1_000.0, 10.0, 500), (7.5, 1.0, 13)] {
            let start = SimTime::ZERO;
            // Manual loop, as the scanners run it.
            let mut manual = TokenBucket::new(rate, capacity, start);
            let mut now = start;
            for _ in 0..probes {
                now = manual.acquire(now);
            }
            // Fast-forward in one call, and in two stacked calls.
            let mut forwarded = TokenBucket::new(rate, capacity, start);
            assert_eq!(forwarded.advance(start, probes), now);
            let mut split = TokenBucket::new(rate, capacity, start);
            let mid = split.advance(start, probes / 2);
            assert_eq!(split.advance(mid, probes - probes / 2), now);
            // The bucket state also matches: the next probe lands identically.
            assert_eq!(manual.acquire(now), forwarded.acquire(now));
        }
    }

    #[test]
    fn advance_zero_probes_is_identity() {
        let mut bucket = TokenBucket::new(5.0, 1.0, SimTime::ZERO);
        assert_eq!(
            bucket.advance(SimTime::from_secs(3), 0),
            SimTime::from_secs(3)
        );
    }

    #[test]
    fn duration_estimate() {
        assert_eq!(TokenBucket::duration_for(1_000.0, 10_000).as_secs(), 10);
    }

    #[test]
    #[should_panic(expected = "probe rate must be positive")]
    fn zero_rate_is_rejected() {
        let _ = TokenBucket::new(0.0, 1.0, SimTime::ZERO);
    }
}
