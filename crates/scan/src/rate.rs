//! Probe pacing in simulated time.
//!
//! The paper's ethics section commits to at most one probe per target per
//! second and an overall probe rate that does not stress networks.  The
//! scanners honour the same discipline against the simulator: a token bucket
//! paces probes and, as a side effect, determines how long (in simulated
//! time) a measurement campaign takes — which in turn interacts with churn.

use alias_netsim::SimTime;

/// A token bucket that hands out send times.
///
/// Internally the bucket keeps fractional-millisecond state so that rates
/// well above 1000 probes/second are honoured even though [`SimTime`] has
/// millisecond granularity.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Sustained rate in probes per second.
    rate_pps: f64,
    /// Maximum burst size in probes.
    capacity: f64,
    /// Currently available tokens.
    tokens: f64,
    /// Last accounting instant, in fractional milliseconds.
    last_ms: f64,
}

impl TokenBucket {
    /// Create a bucket with the given sustained rate and burst capacity.
    ///
    /// # Panics
    /// Panics if `rate_pps` is not strictly positive.
    pub fn new(rate_pps: f64, capacity: f64, start: SimTime) -> Self {
        assert!(rate_pps > 0.0, "probe rate must be positive");
        TokenBucket {
            rate_pps,
            capacity: capacity.max(1.0),
            tokens: capacity.max(1.0),
            last_ms: start.as_millis() as f64,
        }
    }

    /// The sustained rate in probes per second.
    pub fn rate_pps(&self) -> f64 {
        self.rate_pps
    }

    /// Account for one probe and return the simulated time at which it is
    /// sent.  Time never goes backwards; if the bucket is empty the send
    /// time is pushed into the future.
    pub fn acquire(&mut self, now: SimTime) -> SimTime {
        let now_ms = (now.as_millis() as f64).max(self.last_ms);
        // Refill for the elapsed interval.
        let elapsed_secs = (now_ms - self.last_ms) / 1_000.0;
        self.tokens = (self.tokens + elapsed_secs * self.rate_pps).min(self.capacity);
        self.last_ms = now_ms;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            SimTime(now_ms.floor() as u64)
        } else {
            let wait_ms = (1.0 - self.tokens) / self.rate_pps * 1_000.0;
            self.last_ms = now_ms + wait_ms;
            self.tokens = 0.0;
            SimTime(self.last_ms.ceil() as u64)
        }
    }

    /// Time at which `count` probes finish when sent back to back starting
    /// from `start` (convenience for estimating campaign durations).
    pub fn duration_for(rate_pps: f64, count: u64) -> SimTime {
        SimTime(((count as f64 / rate_pps) * 1_000.0).ceil() as u64)
    }

    /// Replay `probes` acquires, feeding each send time back as the next
    /// call's `now` — exactly the pacing loop every scanner runs.  Returns
    /// the last send time (`now` unchanged when `probes == 0`).
    ///
    /// This is the shard fast-forward: cloning a bucket and advancing it to
    /// a shard's first probe index reproduces, probe for probe, the
    /// timestamps the serial scan would have assigned to that shard.
    ///
    /// The replay is batched per *send time*, not per probe.  In the
    /// self-clocked loop every float operation of [`Self::acquire`] other
    /// than the token decrement is a no-op between two probes that share a
    /// timestamp (elapsed time is zero, so the refill adds `0.0` and the
    /// `min` clamp returns the unchanged value), and consecutive `- 1.0`
    /// steps on a token count below the 64-probe capacity cap are exact in
    /// f64 — so draining `floor(tokens)` probes in one subtraction lands on
    /// bit-identical state.  That turns the O(probes) replay into
    /// O(distinct send times): at 200k pps a million-probe fast-forward
    /// collapses from a million acquires to ~5k batch steps.
    pub fn advance(&mut self, now: SimTime, probes: u64) -> SimTime {
        let mut now = now;
        let mut remaining = probes;
        while remaining > 0 {
            // One acquire's refill, verbatim.
            let now_ms = (now.as_millis() as f64).max(self.last_ms);
            let elapsed_secs = (now_ms - self.last_ms) / 1_000.0;
            self.tokens = (self.tokens + elapsed_secs * self.rate_pps).min(self.capacity);
            self.last_ms = now_ms;
            if self.tokens >= 1.0 {
                // Every probe of this burst is sent at the same instant; the
                // batched drain reproduces the per-probe `-= 1.0` sequence
                // exactly (both are exact in f64 below the capacity cap).
                let burst = (self.tokens.floor() as u64).min(remaining);
                self.tokens -= burst as f64;
                remaining -= burst;
                now = SimTime(now_ms.floor() as u64);
            } else {
                let wait_ms = (1.0 - self.tokens) / self.rate_pps * 1_000.0;
                self.last_ms = now_ms + wait_ms;
                self.tokens = 0.0;
                remaining -= 1;
                now = SimTime(self.last_ms.ceil() as u64);
            }
        }
        now
    }

    /// One batched step of the self-clocked schedule: the time of the next
    /// probe group and how many probes share it.  Same float trajectory as
    /// the per-probe loop (see [`Self::advance`]); the caller (a
    /// [`ProbeSchedule`]) meters the group out probe by probe.
    fn schedule_group(&mut self, now: SimTime) -> (SimTime, u64) {
        let now_ms = (now.as_millis() as f64).max(self.last_ms);
        let elapsed_secs = (now_ms - self.last_ms) / 1_000.0;
        self.tokens = (self.tokens + elapsed_secs * self.rate_pps).min(self.capacity);
        self.last_ms = now_ms;
        if self.tokens >= 1.0 {
            let burst = self.tokens.floor();
            self.tokens -= burst;
            (SimTime(now_ms.floor() as u64), burst as u64)
        } else {
            let wait_ms = (1.0 - self.tokens) / self.rate_pps * 1_000.0;
            self.last_ms = now_ms + wait_ms;
            self.tokens = 0.0;
            (SimTime(self.last_ms.ceil() as u64), 1)
        }
    }
}

/// The precomputed send-time schedule of a self-clocked [`TokenBucket`].
///
/// Every scanner paces its probes with the feedback loop
/// `now = bucket.acquire(now)` — which makes the whole timestamp sequence a
/// pure function of `(rate, capacity, start)`.  `ProbeSchedule` walks that
/// sequence without per-probe float math: the bucket trajectory is advanced
/// one *send-time group* at a time (all probes sharing a timestamp in one
/// batch, bit-identical to the per-probe loop — see
/// [`TokenBucket::advance`]), and [`next_send_time`](Self::next_send_time) just meters the
/// current group out.  The hot path per probe is a counter decrement.
///
/// [`skip`](Self::skip) fast-forwards the schedule over a probe range in
/// O(distinct send times), which is what makes per-shard schedule hand-off
/// cheap: a sharded scan clones the schedule, skips it to the shard's first
/// probe index, and every worker resumes the serial pacing exactly.
#[derive(Debug, Clone)]
pub struct ProbeSchedule {
    bucket: TokenBucket,
    /// Last send time handed out (the feedback value; `start` initially).
    now: SimTime,
    /// Send time of the group currently being metered out.
    group_time: SimTime,
    /// Probes left in the current group.
    group_left: u64,
}

impl ProbeSchedule {
    /// The schedule of `TokenBucket::new(rate_pps, capacity, start)` driven
    /// by the self-clocked acquire loop from `start`.
    pub fn new(rate_pps: f64, capacity: f64, start: SimTime) -> Self {
        ProbeSchedule {
            bucket: TokenBucket::new(rate_pps, capacity, start),
            now: start,
            group_time: start,
            group_left: 0,
        }
    }

    /// The send time of the next probe — the value the `acquire` feedback
    /// loop would produce.
    pub fn next_send_time(&mut self) -> SimTime {
        if self.group_left == 0 {
            let (time, count) = self.bucket.schedule_group(self.now);
            self.group_time = time;
            self.group_left = count;
        }
        self.group_left -= 1;
        self.now = self.group_time;
        self.group_time
    }

    /// Fast-forward the schedule past `probes` sends, as if
    /// [`next_send_time`](Self::next_send_time) had been called that many times.
    pub fn skip(&mut self, probes: u64) {
        let mut remaining = probes;
        while remaining > 0 {
            if self.group_left == 0 {
                let (time, count) = self.bucket.schedule_group(self.now);
                self.group_time = time;
                self.group_left = count;
            }
            let take = self.group_left.min(remaining);
            self.group_left -= take;
            remaining -= take;
            self.now = self.group_time;
        }
    }

    /// The send time of the most recent probe (`start` before any).
    pub fn now(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_pacing() {
        let start = SimTime::ZERO;
        let mut bucket = TokenBucket::new(10.0, 2.0, start);
        // Two probes ride the burst capacity.
        assert_eq!(bucket.acquire(start), start);
        assert_eq!(bucket.acquire(start), start);
        // The third waits ~100 ms.
        let third = bucket.acquire(start);
        assert!(third.as_millis() >= 100, "third probe at {third:?}");
        // The fourth waits ~100 ms more.
        let fourth = bucket.acquire(start);
        assert!(fourth.as_millis() >= third.as_millis() + 100);
    }

    #[test]
    fn refill_over_time() {
        let mut bucket = TokenBucket::new(10.0, 1.0, SimTime::ZERO);
        let _ = bucket.acquire(SimTime::ZERO);
        // After one second the bucket has refilled.
        let send = bucket.acquire(SimTime::from_secs(1));
        assert_eq!(send, SimTime::from_secs(1));
    }

    #[test]
    fn send_times_never_regress() {
        let mut bucket = TokenBucket::new(100.0, 1.0, SimTime::ZERO);
        let mut last = SimTime::ZERO;
        for i in 0..500u64 {
            // Caller time oscillates; send times must still be monotone.
            let now = SimTime(if i % 2 == 0 { i } else { i / 2 });
            let at = bucket.acquire(now);
            assert!(at >= last);
            last = at;
        }
    }

    #[test]
    fn sustained_rate_is_respected() {
        let mut bucket = TokenBucket::new(1_000.0, 10.0, SimTime::ZERO);
        let mut last = SimTime::ZERO;
        for _ in 0..5_000 {
            last = bucket.acquire(last);
        }
        // 5000 probes at 1000 pps should take ~5 simulated seconds.
        assert!(last.as_secs() >= 4 && last.as_secs() <= 6, "took {last:?}");
    }

    #[test]
    fn advance_matches_the_manual_acquire_loop() {
        for (rate, capacity, probes) in [(10.0, 2.0, 25u64), (1_000.0, 10.0, 500), (7.5, 1.0, 13)] {
            let start = SimTime::ZERO;
            // Manual loop, as the scanners run it.
            let mut manual = TokenBucket::new(rate, capacity, start);
            let mut now = start;
            for _ in 0..probes {
                now = manual.acquire(now);
            }
            // Fast-forward in one call, and in two stacked calls.
            let mut forwarded = TokenBucket::new(rate, capacity, start);
            assert_eq!(forwarded.advance(start, probes), now);
            let mut split = TokenBucket::new(rate, capacity, start);
            let mid = split.advance(start, probes / 2);
            assert_eq!(split.advance(mid, probes - probes / 2), now);
            // The bucket state also matches: the next probe lands identically.
            assert_eq!(manual.acquire(now), forwarded.acquire(now));
        }
    }

    /// Campaign-relevant and adversarial `(rate, capacity)` corners: the
    /// four capacities the scanners actually use, sub-1000 pps rates that
    /// exercise fractional-millisecond waits, and rates far above 1000 pps
    /// where many probes share each millisecond.
    const SCHEDULE_CONFIGS: &[(f64, f64)] = &[
        (7.5, 1.0),
        (10.0, 2.0),
        (256.0, 4.0),
        (999.9, 4.5),
        (1_000.0, 16.0),
        (20_000.0, 32.0),
        (50_000.0, 32.0),
        (200_000.0, 64.0),
        (1_000_000.0, 64.0),
    ];

    #[test]
    fn advance_is_bit_identical_to_the_acquire_loop_across_configs() {
        for &(rate, capacity) in SCHEDULE_CONFIGS {
            let start = SimTime(17);
            let probes = 1_800u64;
            let mut manual = TokenBucket::new(rate, capacity, start);
            let mut now = start;
            let mut sends = Vec::with_capacity(probes as usize);
            for _ in 0..probes {
                now = manual.acquire(now);
                sends.push(now);
            }
            // Single-shot fast-forward lands on the same final send time.
            let mut forwarded = TokenBucket::new(rate, capacity, start);
            assert_eq!(
                forwarded.advance(start, probes),
                now,
                "advance diverged at rate={rate} capacity={capacity}"
            );
            // ...and on bit-identical internal state.
            assert_eq!(forwarded.tokens.to_bits(), manual.tokens.to_bits());
            assert_eq!(forwarded.last_ms.to_bits(), manual.last_ms.to_bits());
            // Every split point is a valid hand-off: advance to the split,
            // then replay the tail probe by probe — the tail timestamps
            // must match the serial run exactly.
            for split in [0, 1, 7, probes / 3, probes / 2, probes - 1, probes] {
                let mut bucket = TokenBucket::new(rate, capacity, start);
                let mut at = bucket.advance(start, split);
                for expected in &sends[split as usize..] {
                    at = bucket.acquire(at);
                    assert_eq!(
                        at, *expected,
                        "split={split} diverged at rate={rate} capacity={capacity}"
                    );
                }
            }
        }
    }

    #[test]
    fn probe_schedule_replays_the_acquire_loop_exactly() {
        for &(rate, capacity) in SCHEDULE_CONFIGS {
            let start = SimTime(5);
            let probes = 1_800u64;
            let mut manual = TokenBucket::new(rate, capacity, start);
            let mut now = start;
            let mut schedule = ProbeSchedule::new(rate, capacity, start);
            assert_eq!(schedule.now(), start);
            for i in 0..probes {
                now = manual.acquire(now);
                let at = schedule.next_send_time();
                assert_eq!(
                    at, now,
                    "probe {i} diverged at rate={rate} capacity={capacity}"
                );
                assert_eq!(schedule.now(), now);
            }
        }
    }

    #[test]
    fn probe_schedule_skip_matches_stepping() {
        for &(rate, capacity) in SCHEDULE_CONFIGS {
            let start = SimTime::ZERO;
            let probes = 1_200u64;
            // Reference send times from the stepped schedule.
            let mut stepped = ProbeSchedule::new(rate, capacity, start);
            let sends: Vec<SimTime> = (0..probes).map(|_| stepped.next_send_time()).collect();
            for split in [0, 1, 3, probes / 4, probes / 2, probes - 1, probes] {
                let mut skipped = ProbeSchedule::new(rate, capacity, start);
                skipped.skip(split);
                if split > 0 {
                    assert_eq!(skipped.now(), sends[split as usize - 1]);
                }
                for expected in &sends[split as usize..] {
                    assert_eq!(
                        skipped.next_send_time(),
                        *expected,
                        "skip({split}) diverged at rate={rate} capacity={capacity}"
                    );
                }
            }
        }
    }

    #[test]
    fn probe_schedule_skip_zero_is_identity() {
        let mut schedule = ProbeSchedule::new(100.0, 4.0, SimTime(9));
        schedule.skip(0);
        assert_eq!(schedule.now(), SimTime(9));
        let mut fresh = ProbeSchedule::new(100.0, 4.0, SimTime(9));
        assert_eq!(schedule.next_send_time(), fresh.next_send_time());
    }

    #[test]
    fn advance_zero_probes_is_identity() {
        let mut bucket = TokenBucket::new(5.0, 1.0, SimTime::ZERO);
        assert_eq!(
            bucket.advance(SimTime::from_secs(3), 0),
            SimTime::from_secs(3)
        );
    }

    #[test]
    fn duration_estimate() {
        assert_eq!(TokenBucket::duration_for(1_000.0, 10_000).as_secs(), 10);
    }

    #[test]
    #[should_panic(expected = "probe rate must be positive")]
    fn zero_rate_is_rejected() {
        let _ = TokenBucket::new(0.0, 1.0, SimTime::ZERO);
    }
}
