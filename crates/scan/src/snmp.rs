//! SNMPv3 engine-discovery scanning.
//!
//! The paper supplements its SSH/BGP technique with the earlier SNMPv3
//! engine-ID technique (Albakour et al., IMC 2021) and uses it as a baseline
//! and validation source.  This scanner sends the unauthenticated discovery
//! GET to each target and records the engine ID from the Report response.

use crate::rate::ProbeSchedule;
use crate::records::{DataSource, ServiceObservation, ServicePayload};
use crate::space::RoutedSpace;
use alias_netsim::{internet::SNMP_PORT, Internet, ProbeContext, SimTime, VantageKind};
use alias_store::ShardColumns;
use alias_wire::snmp::Snmpv3Message;
use std::net::IpAddr;

/// Configuration of the SNMPv3 scanner.
#[derive(Debug, Clone)]
pub struct SnmpScanConfig {
    /// Probe rate in packets per second.
    pub rate_pps: f64,
    /// Data source label stamped on produced records.
    pub source: DataSource,
}

impl Default for SnmpScanConfig {
    fn default() -> Self {
        SnmpScanConfig {
            rate_pps: 50_000.0,
            source: DataSource::Active,
        }
    }
}

/// The SNMPv3 discovery scanner.
#[derive(Debug, Clone)]
pub struct SnmpScanner {
    config: SnmpScanConfig,
}

impl SnmpScanner {
    /// Create a scanner with the given configuration.
    pub fn new(config: SnmpScanConfig) -> Self {
        SnmpScanner { config }
    }

    /// Probe every address in `targets` with an engine-discovery request.
    pub fn scan(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        vantage: VantageKind,
        start: SimTime,
    ) -> Vec<ServiceObservation> {
        self.scan_columns(internet, targets, vantage, start)
            .into_observations()
    }

    /// [`Self::scan`], emitting straight into shard columns (interned
    /// addresses, no row structs) — the form the campaign store absorbs.
    pub fn scan_columns(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        vantage: VantageKind,
        start: SimTime,
    ) -> ShardColumns {
        let mut schedule = ProbeSchedule::new(self.config.rate_pps, 32.0, start);
        let mut columns = ShardColumns::new();
        self.scan_slice(
            internet,
            targets.iter().copied(),
            0,
            vantage,
            &mut schedule,
            &mut columns,
        );
        columns
    }

    /// The probe loop shared verbatim by the serial and sharded paths: one
    /// paced discovery request per target, with message ids continuing the
    /// global sequence from `global_offset` and send times drawn from
    /// `schedule`; results are pushed into `columns`.  A single copy keeps
    /// the byte-identity contract between the two paths structural.
    ///
    /// Targets arrive as an iterator so the routed-space sweep never
    /// materialises its address list.  Each target is resolved against the
    /// IP index first: the unrouted majority of a swept space consumes its
    /// schedule slot (the probe *is* sent) but skips request construction,
    /// probe dispatch and ASN attribution entirely — none of which can be
    /// observed for an address that does not exist.
    fn scan_slice(
        &self,
        internet: &Internet,
        targets: impl Iterator<Item = IpAddr>,
        global_offset: usize,
        vantage: VantageKind,
        schedule: &mut ProbeSchedule,
        columns: &mut ShardColumns,
    ) {
        for (offset, addr) in targets.enumerate() {
            let now = schedule.next_send_time();
            let Some((device_id, iface_idx)) = internet.lookup(addr) else {
                continue;
            };
            let msg_id = 0x0101 + (global_offset + offset) as i64;
            let request = Snmpv3Message::DiscoveryRequest { msg_id }.to_bytes();
            let ctx = ProbeContext { vantage, time: now };
            let Some(reply) = internet.snmp_probe_at(device_id, iface_idx, &request, &ctx) else {
                continue;
            };
            let Ok(Snmpv3Message::Report { usm, .. }) = Snmpv3Message::parse(&reply) else {
                continue;
            };
            columns.push(
                addr,
                SNMP_PORT,
                self.config.source,
                now,
                Some(internet.asn_at(device_id, iface_idx).0),
                ServicePayload::Snmpv3 {
                    engine_id: usm.engine_id,
                    engine_boots: usm.engine_boots,
                    engine_time: usm.engine_time,
                },
            );
        }
    }

    /// [`Self::scan`] with `threads` shard workers over disjoint slices of
    /// the target list.
    pub fn scan_sharded(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        vantage: VantageKind,
        start: SimTime,
        threads: usize,
    ) -> Vec<ServiceObservation> {
        self.scan_columns_sharded(internet, targets, vantage, start, threads)
            .into_iter()
            .flat_map(ShardColumns::into_observations)
            .collect()
    }

    /// [`Self::scan_columns`] with `threads` shard workers over disjoint
    /// slices of the target list, returning the per-shard column chunks in
    /// shard order.
    ///
    /// Byte-identical to the serial path for any thread count: shards
    /// resume the serial token-bucket schedule (fast-forwarded to their
    /// first target) and use the same global message-id sequence, so the
    /// engine-time values in the Report payloads — which depend on the
    /// probe time — match the serial scan probe for probe.
    pub fn scan_columns_sharded(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        vantage: VantageKind,
        start: SimTime,
        threads: usize,
    ) -> Vec<ShardColumns> {
        if threads <= 1 {
            return vec![self.scan_columns(internet, targets, vantage, start)];
        }
        let ranges = alias_exec::split_even(targets.len() as u64, alias_exec::shards_for(threads));
        let starts = self.schedule_starts(&ranges, start);
        alias_exec::shard_map(ranges.len(), threads, |shard| {
            let range = &ranges[shard];
            let mut schedule = starts[shard].clone();
            let mut columns = ShardColumns::new();
            self.scan_slice(
                internet,
                targets[range.start as usize..range.end as usize]
                    .iter()
                    .copied(),
                range.start as usize,
                vantage,
                &mut schedule,
                &mut columns,
            );
            columns
        })
    }

    /// Deal the serial pacing schedule out at the shard boundaries: shard
    /// `i` receives the schedule state after every probe of shards `0..i`,
    /// batched per send time so the whole pass is cheap even when the
    /// sharded space runs to tens of millions of probes.
    fn schedule_starts(
        &self,
        ranges: &[std::ops::Range<u64>],
        start: SimTime,
    ) -> Vec<ProbeSchedule> {
        let mut boundary = ProbeSchedule::new(self.config.rate_pps, 32.0, start);
        ranges
            .iter()
            .map(|range| {
                let state = boundary.clone();
                boundary.skip(range.end - range.start);
                state
            })
            .collect()
    }

    /// Probe every IPv4 address in the routed prefixes (the paper's
    /// Internet-wide SNMPv3 scan).
    pub fn scan_routed_space(
        &self,
        internet: &Internet,
        vantage: VantageKind,
        start: SimTime,
    ) -> Vec<ServiceObservation> {
        self.scan_routed_space_sharded(internet, vantage, start, 1)
    }

    /// [`Self::scan_routed_space`] with `threads` shard workers.
    pub fn scan_routed_space_sharded(
        &self,
        internet: &Internet,
        vantage: VantageKind,
        start: SimTime,
        threads: usize,
    ) -> Vec<ServiceObservation> {
        self.scan_routed_space_columns_sharded(internet, vantage, start, threads)
            .into_iter()
            .flat_map(ShardColumns::into_observations)
            .collect()
    }

    /// [`Self::scan_routed_space_sharded`], returning per-shard column
    /// chunks in shard order.
    ///
    /// The routed space is walked through [`RoutedSpace`] rather than
    /// materialised as an address list — at the larger scale tiers the list
    /// alone would dwarf the scan's useful output.
    pub fn scan_routed_space_columns_sharded(
        &self,
        internet: &Internet,
        vantage: VantageKind,
        start: SimTime,
        threads: usize,
    ) -> Vec<ShardColumns> {
        let space = RoutedSpace::of(internet);
        if threads <= 1 {
            let mut schedule = ProbeSchedule::new(self.config.rate_pps, 32.0, start);
            let mut columns = ShardColumns::new();
            self.scan_slice(
                internet,
                space.iter_range(0, space.len()).map(IpAddr::V4),
                0,
                vantage,
                &mut schedule,
                &mut columns,
            );
            return vec![columns];
        }
        let ranges = alias_exec::split_even(space.len(), alias_exec::shards_for(threads));
        let starts = self.schedule_starts(&ranges, start);
        alias_exec::shard_map(ranges.len(), threads, |shard| {
            let range = &ranges[shard];
            let mut schedule = starts[shard].clone();
            let mut columns = ShardColumns::new();
            self.scan_slice(
                internet,
                space.iter_range(range.start, range.end).map(IpAddr::V4),
                range.start as usize,
                vantage,
                &mut schedule,
                &mut columns,
            );
            columns
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::{InternetBuilder, InternetConfig};

    fn internet() -> Internet {
        InternetBuilder::new(InternetConfig::tiny(55)).build()
    }

    /// Sorted, distinct copy of an address list (id-space discipline:
    /// comparisons run on ordered vectors, not address sets).
    fn sorted_distinct(addrs: impl IntoIterator<Item = IpAddr>) -> Vec<IpAddr> {
        let mut addrs: Vec<IpAddr> = addrs.into_iter().collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
    }

    #[test]
    fn scan_finds_every_visible_snmp_interface() {
        let internet = internet();
        let expected = sorted_distinct(
            internet
                .devices()
                .iter()
                .flat_map(|d| d.snmp_responding_addrs())
                .filter(|a| a.is_ipv4()),
        );
        assert!(!expected.is_empty());
        let observations = SnmpScanner::new(SnmpScanConfig::default()).scan_routed_space(
            &internet,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        let found = sorted_distinct(observations.iter().map(|o| o.addr));
        assert_eq!(found, expected);
    }

    #[test]
    fn engine_id_matches_ground_truth_device() {
        let internet = internet();
        let observations = SnmpScanner::new(SnmpScanConfig::default()).scan_routed_space(
            &internet,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        for obs in &observations {
            let (device_id, _) = internet.lookup(obs.addr).unwrap();
            let device = internet.device(device_id);
            let expected = &device.snmp.as_ref().unwrap().engine_id;
            match &obs.payload {
                ServicePayload::Snmpv3 { engine_id, .. } => assert_eq!(engine_id, expected),
                other => panic!("unexpected payload {other:?}"),
            }
        }
    }

    #[test]
    fn sharded_snmp_scan_is_byte_identical_to_serial() {
        // Engine-time values in the Report payloads depend on probe time,
        // so whole-observation equality proves the shards resume the serial
        // pacing and message-id schedules exactly.
        let internet = internet();
        let serial = SnmpScanner::new(SnmpScanConfig::default()).scan_routed_space(
            &internet,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        for threads in [2usize, 7] {
            let sharded = SnmpScanner::new(SnmpScanConfig::default()).scan_routed_space_sharded(
                &internet,
                VantageKind::Distributed,
                SimTime::ZERO,
                threads,
            );
            assert_eq!(sharded, serial, "threads={threads}");
        }
    }

    #[test]
    fn explicit_target_scan_only_touches_targets() {
        let internet = internet();
        let device = internet
            .devices()
            .iter()
            .find(|d| !d.snmp_responding_addrs().is_empty())
            .unwrap();
        let targets = vec![device.snmp_responding_addrs()[0]];
        let observations = SnmpScanner::new(SnmpScanConfig::default()).scan(
            &internet,
            &targets,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        assert_eq!(observations.len(), 1);
        assert_eq!(observations[0].addr, targets[0]);
        assert_eq!(observations[0].port, SNMP_PORT);
    }
}
