//! ICMP rate-limiting probe campaign.
//!
//! The eighth resolution technique (Vermeulen et al., "Alias Resolution
//! Based on ICMP Rate Limiting") needs a different kind of measurement
//! than the banner grabs: per-address **loss patterns** under escalating
//! probe rates.  A router enforces one ICMP rate limiter across all of
//! its interfaces, so once the probing rate exceeds the limiter every
//! interface of the device starts dropping replies at the same rates —
//! the signal `alias-resolve`'s rate-limiting technique correlates.
//!
//! The prober runs in two steps:
//!
//! 1. **Discovery** — a serial ping sweep over the routed IPv4 space and
//!    the IPv6 hitlist selects the echo-responsive addresses.
//! 2. **Escalation rounds** — each target is burst-probed at a ladder of
//!    rates (`base · 2^round`).  A screening burst at the *highest* rate
//!    runs first: a target with zero loss there cannot lose packets at
//!    any lower rate (loss is monotone in the probing rate), so the whole
//!    ladder is skipped.  Only **lossy** rounds are recorded, as
//!    [`ServicePayload::RateLimit`] observations.
//!
//! Timestamps are slot-based — a pure function of the target's global
//! index and the round number — so the sharded path is byte-identical to
//! the serial one without any pacing-state hand-off between shards.

use crate::records::{DataSource, ServiceObservation, ServicePayload};
use crate::space::RoutedSpace;
use alias_netsim::{Internet, ProbeContext, ServiceProtocol, SimTime, VantageKind};
use alias_obs::{DeterminismClass, LazyCounter};
use alias_store::ShardColumns;
use std::net::{IpAddr, Ipv6Addr};

/// Targets skipped by the screening burst (zero loss at the top rate).
/// Bursts are pure per target, so the total is shard-independent even
/// though the counter is bumped from inside shard workers.
static SCREENED_TARGETS: LazyCounter = LazyCounter::new(
    "scan.rate_probe_screened",
    DeterminismClass::Deterministic,
    "targets",
    "scan",
);

/// Lossy escalation rounds recorded as `RateLimit` observations.
static LOSSY_ROUNDS: LazyCounter = LazyCounter::new(
    "scan.rate_probe_lossy_rounds",
    DeterminismClass::Deterministic,
    "rounds",
    "scan",
);

/// Configuration of the rate-limiting prober.
#[derive(Debug, Clone)]
pub struct RateProbeConfig {
    /// Probing rate of round 0 in packets per second; round `r` probes at
    /// `base_rate_pps · 2^r`.
    pub base_rate_pps: f64,
    /// Number of escalation rounds.
    pub rounds: u8,
    /// Echo requests per burst (one burst per round).
    pub probes_per_round: u16,
    /// Simulated time between consecutive rounds of one target.
    pub round_spacing: SimTime,
    /// Data source label stamped on produced records.
    pub source: DataSource,
}

impl Default for RateProbeConfig {
    fn default() -> Self {
        RateProbeConfig {
            base_rate_pps: 256.0,
            rounds: 5,
            probes_per_round: 24,
            round_spacing: SimTime(250),
            source: DataSource::Active,
        }
    }
}

impl RateProbeConfig {
    /// The probing rate of escalation round `round`.
    pub fn round_rate(&self, round: u8) -> f64 {
        self.base_rate_pps * f64::from(1u32 << u32::from(round))
    }

    /// Simulated time budgeted per target (all rounds).
    pub fn target_slot(&self) -> SimTime {
        SimTime(self.round_spacing.as_millis() * u64::from(self.rounds))
    }
}

/// The ICMP rate-limiting prober.
#[derive(Debug, Clone)]
pub struct RateProber {
    config: RateProbeConfig,
}

impl RateProber {
    /// Create a prober with the given configuration.
    pub fn new(config: RateProbeConfig) -> Self {
        assert!(config.rounds >= 1, "need at least one escalation round");
        assert!(config.probes_per_round >= 1, "need at least one probe");
        RateProber { config }
    }

    /// The prober configuration.
    pub fn config(&self) -> &RateProbeConfig {
        &self.config
    }

    /// Discover the echo-responsive target population: every address of
    /// the routed IPv4 space plus the IPv6 hitlist that answers ping.  A
    /// pure membership filter with no measurement state.
    pub fn discover_targets(
        &self,
        internet: &Internet,
        hitlist_v6: &[Ipv6Addr],
        vantage: VantageKind,
        at: SimTime,
    ) -> Vec<IpAddr> {
        self.discover_targets_sharded(internet, hitlist_v6, vantage, at, 1)
    }

    /// [`Self::discover_targets`] with `threads` shard workers over the
    /// routed IPv4 space.  The filter is stateless, so concatenating the
    /// per-shard survivors in shard order reproduces the serial sweep
    /// byte for byte; the (much smaller) IPv6 hitlist stays serial.
    pub fn discover_targets_sharded(
        &self,
        internet: &Internet,
        hitlist_v6: &[Ipv6Addr],
        vantage: VantageKind,
        at: SimTime,
        threads: usize,
    ) -> Vec<IpAddr> {
        let ctx = ProbeContext { vantage, time: at };
        let space = RoutedSpace::of(internet);
        let mut targets = if threads <= 1 {
            space
                .iter_range(0, space.len())
                .map(IpAddr::V4)
                .filter(|&a| internet.ping_responds(a, &ctx))
                .collect()
        } else {
            let ranges = alias_exec::split_even(space.len(), alias_exec::shards_for(threads));
            let per_shard: Vec<Vec<IpAddr>> =
                alias_exec::shard_map(ranges.len(), threads, |shard| {
                    let range = &ranges[shard];
                    space
                        .iter_range(range.start, range.end)
                        .map(IpAddr::V4)
                        .filter(|&a| internet.ping_responds(a, &ctx))
                        .collect()
                });
            per_shard.into_iter().flatten().collect::<Vec<IpAddr>>()
        };
        targets.extend(
            hitlist_v6
                .iter()
                .map(|&a| IpAddr::V6(a))
                .filter(|&a| internet.ping_responds(a, &ctx)),
        );
        targets
    }

    /// The probe loop shared verbatim by the serial and sharded paths.
    /// Target `global_offset + i` owns the time slot starting at
    /// `phase_start + (global_offset + i) · target_slot`, so timestamps
    /// never depend on how the target list was split.
    fn probe_slice(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        global_offset: usize,
        vantage: VantageKind,
        phase_start: SimTime,
        columns: &mut ShardColumns,
    ) {
        let cfg = &self.config;
        let slot = cfg.target_slot().as_millis();
        let sent = cfg.probes_per_round;
        let count = u32::from(sent);
        for (offset, &addr) in targets.iter().enumerate() {
            let t0 = phase_start + SimTime((global_offset + offset) as u64 * slot);
            // The limiter is router-wide: resolve the target once and burst
            // the device through the whole ladder (an unrouted address can
            // never answer, exactly as an unresolvable one).
            let Some((device_id, iface_idx)) = internet.lookup(addr) else {
                continue;
            };
            // Screening burst at the top rate: no loss there means no loss
            // anywhere on the ladder (monotonicity), so skip the target.
            // Bursts are pure — the limiter is evaluated from a full
            // bucket every time — so the screen costs nothing downstream.
            let top = cfg.rounds - 1;
            let ctx = ProbeContext { vantage, time: t0 };
            let Some(replies) = internet.rate_burst_at(device_id, cfg.round_rate(top), count, &ctx)
            else {
                continue;
            };
            if replies == count {
                SCREENED_TARGETS.incr();
                continue;
            }
            for round in 0..cfg.rounds {
                let time = t0 + SimTime(u64::from(round) * cfg.round_spacing.as_millis());
                let ctx = ProbeContext { vantage, time };
                let rate = cfg.round_rate(round);
                let Some(replies) = internet.rate_burst_at(device_id, rate, count, &ctx) else {
                    continue;
                };
                let lost = sent - replies as u16;
                if lost == 0 {
                    continue;
                }
                LOSSY_ROUNDS.incr();
                columns.push(
                    addr,
                    ServiceProtocol::IcmpRateLimit.default_port(),
                    cfg.source,
                    time,
                    Some(internet.asn_at(device_id, iface_idx).0),
                    ServicePayload::RateLimit {
                        round,
                        rate_pps: rate as u32,
                        sent,
                        lost,
                    },
                );
            }
        }
    }

    /// Probe every target through the escalation ladder, emitting straight
    /// into shard columns (the form the campaign store absorbs).
    pub fn probe_columns(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        vantage: VantageKind,
        start: SimTime,
    ) -> ShardColumns {
        let mut columns = ShardColumns::new();
        self.probe_slice(internet, targets, 0, vantage, start, &mut columns);
        columns
    }

    /// [`Self::probe_columns`] with `threads` shard workers over disjoint
    /// slices of the target list, returning per-shard column chunks in
    /// shard order.  Byte-identical to the serial path for any thread
    /// count: timestamps are a pure function of the global target index.
    pub fn probe_columns_sharded(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        vantage: VantageKind,
        start: SimTime,
        threads: usize,
    ) -> Vec<ShardColumns> {
        if threads <= 1 {
            return vec![self.probe_columns(internet, targets, vantage, start)];
        }
        let ranges = alias_exec::split_even(targets.len() as u64, alias_exec::shards_for(threads));
        alias_exec::shard_map(ranges.len(), threads, |shard| {
            let range = &ranges[shard];
            let mut columns = ShardColumns::new();
            self.probe_slice(
                internet,
                &targets[range.start as usize..range.end as usize],
                range.start as usize,
                vantage,
                start,
                &mut columns,
            );
            columns
        })
    }

    /// Discovery plus probing, materialised as observation rows (test and
    /// report convenience; the campaign uses the columnar path).
    pub fn probe(
        &self,
        internet: &Internet,
        hitlist_v6: &[Ipv6Addr],
        vantage: VantageKind,
        start: SimTime,
    ) -> Vec<ServiceObservation> {
        let targets = self.discover_targets(internet, hitlist_v6, vantage, start);
        self.probe_columns(internet, &targets, vantage, start)
            .into_observations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::{DeviceKind, InternetBuilder, InternetConfig};

    fn internet_with_silent(seed: u64, silent: usize) -> Internet {
        let mut config = InternetConfig::tiny(seed);
        config.devices.silent_routers = silent;
        InternetBuilder::new(config).build()
    }

    #[test]
    fn discovery_covers_silent_routers_and_both_families() {
        let internet = internet_with_silent(77, 10);
        let prober = RateProber::new(RateProbeConfig::default());
        let hitlist: Vec<Ipv6Addr> = internet
            .devices()
            .iter()
            .flat_map(|d| d.ipv6_addrs())
            .collect();
        let targets =
            prober.discover_targets(&internet, &hitlist, VantageKind::SingleVp, SimTime::ZERO);
        assert!(targets.iter().any(|a| a.is_ipv4()));
        assert!(targets.iter().any(|a| a.is_ipv6()));
        let ctx = ProbeContext {
            vantage: VantageKind::SingleVp,
            time: SimTime::ZERO,
        };
        for &addr in &targets {
            assert!(internet.ping_responds(addr, &ctx));
        }
        // Every silent router's v4 interfaces are in the routed space and
        // answer ping, so discovery must pick all of them up.
        for device in internet.devices() {
            if device.kind == DeviceKind::SilentRouter {
                for addr in device.ipv4_addrs() {
                    assert!(targets.contains(&IpAddr::V4(addr)), "missing {addr}");
                }
            }
        }
    }

    #[test]
    fn only_lossy_rounds_are_recorded_and_losses_are_plausible() {
        let internet = internet_with_silent(77, 10);
        let prober = RateProber::new(RateProbeConfig::default());
        let cfg = prober.config().clone();
        let observations = prober.probe(&internet, &[], VantageKind::SingleVp, SimTime::ZERO);
        assert!(!observations.is_empty());
        for obs in &observations {
            let ServicePayload::RateLimit {
                round,
                rate_pps,
                sent,
                lost,
            } = obs.payload
            else {
                panic!("unexpected payload {:?}", obs.payload)
            };
            assert!(round < cfg.rounds);
            assert_eq!(f64::from(rate_pps), cfg.round_rate(round));
            assert_eq!(sent, cfg.probes_per_round);
            assert!(lost >= 1 && lost <= sent);
            assert_eq!(obs.port, 0);
            assert!(obs.asn.is_some());
            // Only limiter-constrained device classes can lose packets at
            // these rates; endpoints' limiters sit far above the ladder.
            let (device_id, _) = internet.lookup(obs.addr).unwrap();
            let kind = internet.device(device_id).kind;
            assert!(
                matches!(
                    kind,
                    DeviceKind::IspRouter | DeviceKind::BorderRouter | DeviceKind::SilentRouter
                ),
                "unexpected lossy device kind {kind:?}"
            );
        }
    }

    #[test]
    fn lossy_rounds_form_a_suffix_of_the_ladder() {
        // Loss is monotone in the probing rate, so per address the recorded
        // rounds must be exactly the rounds from the first lossy one up.
        let internet = internet_with_silent(99, 8);
        let prober = RateProber::new(RateProbeConfig::default());
        let observations = prober.probe(&internet, &[], VantageKind::SingleVp, SimTime::ZERO);
        // Group rounds per address without leaving id-space discipline: a
        // stable sort by address keeps each address's rounds in emission
        // (i.e. ascending) order.
        let mut pairs: Vec<(IpAddr, u8)> = observations
            .iter()
            .map(|obs| {
                let ServicePayload::RateLimit { round, .. } = obs.payload else {
                    unreachable!()
                };
                (obs.addr, round)
            })
            .collect();
        pairs.sort_by_key(|&(addr, _)| addr);
        let top = prober.config().rounds - 1;
        let mut i = 0;
        while i < pairs.len() {
            let addr = pairs[i].0;
            let mut rounds = Vec::new();
            while i < pairs.len() && pairs[i].0 == addr {
                rounds.push(pairs[i].1);
                i += 1;
            }
            let expected: Vec<u8> = (rounds[0]..=top).collect();
            assert_eq!(rounds, expected, "non-suffix lossy rounds for {addr}");
        }
    }

    #[test]
    fn sharded_rate_probing_is_byte_identical_to_serial() {
        for seed in [77u64, 2023] {
            let internet = internet_with_silent(seed, 10);
            let prober = RateProber::new(RateProbeConfig::default());
            let targets =
                prober.discover_targets(&internet, &[], VantageKind::SingleVp, SimTime::ZERO);
            let serial: Vec<ServiceObservation> = prober
                .probe_columns(&internet, &targets, VantageKind::SingleVp, SimTime::ZERO)
                .into_observations();
            for threads in [2usize, 7] {
                let sharded: Vec<ServiceObservation> = prober
                    .probe_columns_sharded(
                        &internet,
                        &targets,
                        VantageKind::SingleVp,
                        SimTime::ZERO,
                        threads,
                    )
                    .into_iter()
                    .flat_map(ShardColumns::into_observations)
                    .collect();
                assert_eq!(sharded, serial, "seed={seed} threads={threads}");
            }
        }
    }
}
