//! Pseudorandom address permutation.
//!
//! ZMap famously iterates the IPv4 space in a pseudorandom order generated
//! by a cyclic group, so probes to adjacent addresses are spread out in time
//! and no per-address state is needed.  The simulator's address space is a
//! list of routed prefixes rather than the whole 2^32 space, so we permute
//! the index range `[0, n)` instead, using a full-period linear congruential
//! generator over the next power of two and skipping out-of-range values —
//! the same stateless-iteration property with a much simpler construction.

/// A bijective pseudorandom permutation of `[0, n)`.
#[derive(Debug, Clone)]
pub struct IndexPermutation {
    n: u64,
    modulus: u64,
    multiplier: u64,
    increment: u64,
}

impl IndexPermutation {
    /// Create a permutation of `[0, n)` seeded with `seed`.
    pub fn new(n: u64, seed: u64) -> Self {
        let modulus = n.max(2).next_power_of_two();
        // Full-period LCG over a power-of-two modulus requires:
        //   increment odd, multiplier ≡ 1 (mod 4).
        let multiplier = ((seed | 1).wrapping_mul(4)).wrapping_add(1) % modulus;
        let increment = (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1) % modulus;
        IndexPermutation {
            n,
            modulus,
            multiplier: multiplier.max(5),
            increment,
        }
    }

    /// Number of elements in the permutation.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterate over all indices exactly once in pseudorandom order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        let mut state: u64 = self.increment % self.modulus;
        let mut emitted = 0u64;
        std::iter::from_fn(move || {
            while emitted < self.n {
                let value = state;
                state = state
                    .wrapping_mul(self.multiplier)
                    .wrapping_add(self.increment)
                    % self.modulus;
                if value < self.n {
                    emitted += 1;
                    return Some(value);
                }
            }
            None
        })
    }

    /// Number of raw LCG steps making up one full period (the power-of-two
    /// modulus).  Raw steps are the shardable unit: splitting `[0,
    /// raw_len())` into contiguous ranges and concatenating the
    /// [`Self::iter_raw_range`] outputs reproduces [`Self::iter`] exactly.
    pub fn raw_len(&self) -> u64 {
        self.modulus
    }

    /// The LCG state at raw step `step`, computed in `O(log step)` by
    /// composing the affine map `x -> multiplier·x + increment (mod m)`
    /// with itself — this is what lets shard workers jump straight to the
    /// start of their raw-step range.
    fn state_at(&self, step: u64) -> u64 {
        let mask = self.modulus - 1;
        // Compose `step` applications of (a, c): x -> a·x + c (mod 2^k).
        let (mut acc_a, mut acc_c) = (1u64, 0u64);
        let (mut sq_a, mut sq_c) = (self.multiplier & mask, self.increment & mask);
        let mut remaining = step;
        while remaining > 0 {
            if remaining & 1 == 1 {
                // (sq ∘ acc): first acc, then sq.
                acc_c = sq_a.wrapping_mul(acc_c).wrapping_add(sq_c) & mask;
                acc_a = sq_a.wrapping_mul(acc_a) & mask;
            }
            sq_c = sq_a.wrapping_mul(sq_c).wrapping_add(sq_c) & mask;
            sq_a = sq_a.wrapping_mul(sq_a) & mask;
            remaining >>= 1;
        }
        let start = self.increment & mask;
        acc_a.wrapping_mul(start).wrapping_add(acc_c) & mask
    }

    /// Iterate the in-range indices emitted during raw steps `[start, end)`.
    ///
    /// Concatenating the outputs for contiguous raw ranges covering
    /// `[0, raw_len())` yields exactly the sequence of [`Self::iter`]:
    /// same values, same order — the foundation of the deterministic
    /// sharded scan.
    pub fn iter_raw_range(&self, start: u64, end: u64) -> impl Iterator<Item = u64> + '_ {
        let end = end.min(self.modulus);
        let mut state = if start < end { self.state_at(start) } else { 0 };
        let mut step = start;
        std::iter::from_fn(move || {
            while step < end {
                let value = state;
                state = state
                    .wrapping_mul(self.multiplier)
                    .wrapping_add(self.increment)
                    % self.modulus;
                step += 1;
                if value < self.n {
                    return Some(value);
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn permutation_is_a_bijection() {
        for n in [1u64, 2, 3, 10, 255, 256, 1000, 4096] {
            let perm = IndexPermutation::new(n, 42);
            let mut seen = vec![false; n as usize];
            let mut count = 0u64;
            for idx in perm.iter() {
                assert!(!seen[idx as usize], "index {idx} emitted twice for n={n}");
                seen[idx as usize] = true;
                count += 1;
            }
            assert_eq!(count, n);
        }
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a: Vec<u64> = IndexPermutation::new(1000, 1).iter().collect();
        let b: Vec<u64> = IndexPermutation::new(1000, 2).iter().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn order_is_not_sequential() {
        let order: Vec<u64> = IndexPermutation::new(10_000, 7).iter().take(100).collect();
        let sequential = order.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(sequential < 10, "order looks sequential: {order:?}");
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(IndexPermutation::new(0, 3).iter().count(), 0);
        assert!(IndexPermutation::new(0, 3).is_empty());
        assert_eq!(
            IndexPermutation::new(1, 3).iter().collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn raw_range_concatenation_reproduces_iter() {
        for (n, shards) in [
            (1u64, 2usize),
            (10, 3),
            (255, 7),
            (1000, 2),
            (1000, 7),
            (4096, 5),
        ] {
            let perm = IndexPermutation::new(n, 99);
            let serial: Vec<u64> = perm.iter().collect();
            let raw = perm.raw_len();
            let chunk = raw.div_ceil(shards as u64);
            let mut sharded = Vec::new();
            let mut start = 0;
            while start < raw {
                let end = (start + chunk).min(raw);
                sharded.extend(perm.iter_raw_range(start, end));
                start = end;
            }
            assert_eq!(sharded, serial, "n={n} shards={shards}");
        }
    }

    #[test]
    fn raw_range_jump_matches_sequential_walk() {
        let perm = IndexPermutation::new(1000, 0xfeed);
        let full: Vec<u64> = perm.iter_raw_range(0, perm.raw_len()).collect();
        assert_eq!(full, perm.iter().collect::<Vec<u64>>());
        // Jumping to an arbitrary raw offset matches skipping there.
        let raw = perm.raw_len();
        for offset in [1u64, 7, 100, raw - 1, raw] {
            let jumped: Vec<u64> = perm.iter_raw_range(offset, raw).collect();
            // Walk serially counting raw steps to find the expected suffix.
            let mut expected = Vec::new();
            let mut state = perm.increment % perm.modulus;
            for step in 0..raw {
                if step >= offset && state < perm.n {
                    expected.push(state);
                }
                state = state
                    .wrapping_mul(perm.multiplier)
                    .wrapping_add(perm.increment)
                    % perm.modulus;
            }
            assert_eq!(jumped, expected, "offset={offset}");
        }
    }

    proptest! {
        #[test]
        fn proptest_raw_range_sharding(n in 1u64..2000, seed in any::<u64>(), shards in 1usize..9) {
            let perm = IndexPermutation::new(n, seed);
            let serial: Vec<u64> = perm.iter().collect();
            let raw = perm.raw_len();
            let chunk = raw.div_ceil(shards as u64).max(1);
            let mut sharded = Vec::new();
            let mut start = 0;
            while start < raw {
                let end = (start + chunk).min(raw);
                sharded.extend(perm.iter_raw_range(start, end));
                start = end;
            }
            prop_assert_eq!(sharded, serial);
        }

        #[test]
        fn proptest_bijection(n in 1u64..3000, seed in any::<u64>()) {
            let perm = IndexPermutation::new(n, seed);
            let mut values: Vec<u64> = perm.iter().collect();
            prop_assert_eq!(values.len() as u64, n);
            values.sort_unstable();
            values.dedup();
            prop_assert_eq!(values.len() as u64, n);
            prop_assert_eq!(values[0], 0);
            prop_assert_eq!(values[values.len() - 1], n - 1);
        }
    }
}
