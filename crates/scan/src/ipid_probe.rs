//! IPID time-series collection for IPID-based alias resolution.
//!
//! MIDAR, Ally and RadarGun all work by sampling the IPv4 Identification
//! field of candidate addresses over time and testing whether the samples of
//! two addresses can be explained by a single shared counter.  This module
//! provides the probing schedules those baselines need:
//!
//! * round-robin sampling of a target set (MIDAR's estimation and discovery
//!   stages), and
//! * tightly interleaved sampling of a candidate pair (Ally, and MIDAR's
//!   elimination/corroboration stages).

use crate::rate::TokenBucket;
use alias_netsim::{Internet, ProbeContext, SimTime, VantageKind};
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// One IPID sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpidSample {
    /// When the reply was received.
    pub time: SimTime,
    /// The observed IPID value.
    pub ipid: u16,
}

/// The IPID samples collected for one address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpidTimeSeries {
    /// The probed address.
    pub addr: IpAddr,
    /// Samples in probe order.
    pub samples: Vec<IpidSample>,
}

impl IpidTimeSeries {
    /// Whether enough samples were collected to run a monotonicity test.
    pub fn is_usable(&self) -> bool {
        self.samples.len() >= 3
    }
}

/// Configuration of the IPID prober.
#[derive(Debug, Clone)]
pub struct IpidProberConfig {
    /// Samples collected per target per round.
    pub rounds: usize,
    /// Spacing between successive rounds.
    pub round_spacing: SimTime,
    /// Probe rate in packets per second.
    pub rate_pps: f64,
}

impl Default for IpidProberConfig {
    fn default() -> Self {
        IpidProberConfig {
            rounds: 30,
            round_spacing: SimTime::from_secs(10),
            rate_pps: 5_000.0,
        }
    }
}

/// Collects IPID time series from the simulated Internet.
#[derive(Debug, Clone)]
pub struct IpidProber {
    config: IpidProberConfig,
}

impl IpidProber {
    /// Create a prober with the given configuration.
    pub fn new(config: IpidProberConfig) -> Self {
        IpidProber { config }
    }

    /// One identifier probe: ICMP echo for IPv4 (the classic IPID sample),
    /// fragment-eliciting probe for IPv6 (Speedtrap's fragment
    /// Identification).  Both draw from the same device-wide counter.
    fn probe(
        internet: &Internet,
        addr: IpAddr,
        ctx: &ProbeContext,
    ) -> Option<alias_netsim::internet::EchoObservation> {
        if addr.is_ipv6() {
            internet.ipv6_fragment_probe(addr, ctx)
        } else {
            internet.icmp_echo(addr, ctx)
        }
    }

    /// Round-robin sample every target: one probe per target per round,
    /// `rounds` rounds, targets probed in order within a round.
    ///
    /// IPv4 targets are sampled with ICMP echo probes, IPv6 targets with
    /// fragment-eliciting probes, both drawing from the same device-wide
    /// counter.  Unresponsive
    /// targets yield series with fewer (possibly zero) samples.
    ///
    /// The probe loop cannot use the precomputed bucket schedule — the
    /// strictly-increasing timestamp forcing feeds back into the bucket's
    /// refill arithmetic — but the target set is fixed across rounds, so
    /// each address is resolved against the IP index once up front rather
    /// than once per sample.
    pub fn collect_round_robin(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        vantage: VantageKind,
        start: SimTime,
    ) -> Vec<IpidTimeSeries> {
        let mut series: Vec<IpidTimeSeries> = targets
            .iter()
            .map(|&addr| IpidTimeSeries {
                addr,
                samples: Vec::with_capacity(self.config.rounds),
            })
            .collect();
        // Resolve every target once; the per-round loop probes through the
        // resolved interface (`None` for addresses that do not exist, which
        // never answer — exactly as the per-probe lookup would conclude).
        let resolved: Vec<Option<(alias_netsim::DeviceId, usize)>> =
            targets.iter().map(|&addr| internet.lookup(addr)).collect();
        let mut bucket = TokenBucket::new(self.config.rate_pps, 16.0, start);
        let mut round_start = start;
        // Probe timestamps are forced to be strictly increasing so that the
        // time-ordered merge of any two series reflects the true probe
        // order, which the monotonic bounds test depends on.
        let mut last_sent = SimTime::ZERO;
        for _ in 0..self.config.rounds {
            let mut now = round_start;
            for (entry, target) in series.iter_mut().zip(&resolved) {
                now = bucket.acquire(now);
                if now <= last_sent {
                    now = last_sent + SimTime(1);
                }
                last_sent = now;
                let Some((device_id, iface_idx)) = *target else {
                    continue;
                };
                let ctx = ProbeContext { vantage, time: now };
                if let Some(echo) = internet.identifier_probe_at(device_id, iface_idx, &ctx) {
                    entry.samples.push(IpidSample {
                        time: echo.time,
                        ipid: echo.ipid,
                    });
                }
            }
            round_start = round_start.max(now) + self.config.round_spacing;
        }
        series
    }

    /// Tightly interleave probes to a pair of addresses (A, B, A, B, ...),
    /// as the Ally test requires.  Returns the merged probe order as
    /// `(index, sample)` pairs where even indices went to `a` and odd to `b`,
    /// plus the per-address series.
    pub fn collect_interleaved_pair(
        &self,
        internet: &Internet,
        a: IpAddr,
        b: IpAddr,
        probes_per_addr: usize,
        vantage: VantageKind,
        start: SimTime,
    ) -> (IpidTimeSeries, IpidTimeSeries, Vec<(IpAddr, IpidSample)>) {
        let mut bucket = TokenBucket::new(self.config.rate_pps, 4.0, start);
        let mut now = start;
        let mut last_sent = SimTime::ZERO;
        let mut series_a = IpidTimeSeries {
            addr: a,
            samples: Vec::new(),
        };
        let mut series_b = IpidTimeSeries {
            addr: b,
            samples: Vec::new(),
        };
        let mut merged = Vec::new();
        for i in 0..probes_per_addr * 2 {
            now = bucket.acquire(now);
            // Strictly increasing timestamps keep the merged probe order
            // recoverable by time (see collect_round_robin).
            if now <= last_sent {
                now = last_sent + SimTime(1);
            }
            last_sent = now;
            let ctx = ProbeContext { vantage, time: now };
            let target = if i % 2 == 0 { a } else { b };
            if let Some(echo) = Self::probe(internet, target, &ctx) {
                let sample = IpidSample {
                    time: echo.time,
                    ipid: echo.ipid,
                };
                if i % 2 == 0 {
                    series_a.samples.push(sample);
                } else {
                    series_b.samples.push(sample);
                }
                merged.push((target, sample));
            }
        }
        (series_a, series_b, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::ipid::IpidModel;
    use alias_netsim::{InternetBuilder, InternetConfig};

    fn internet() -> Internet {
        InternetBuilder::new(InternetConfig::tiny(202)).build()
    }

    fn pingable_device_addrs(internet: &Internet, shared_counter: bool) -> Option<Vec<IpAddr>> {
        internet
            .devices()
            .iter()
            .find(|d| {
                d.responds_to_ping
                    && d.ipv4_addrs().len() >= 2
                    && d.ipid.lock().model().is_shared_monotonic() == shared_counter
                    && d.ipid
                        .lock()
                        .model()
                        .velocity()
                        .map(|v| v < 1_000.0)
                        .unwrap_or(!shared_counter)
            })
            .map(|d| d.ipv4_addrs().into_iter().map(IpAddr::V4).collect())
    }

    #[test]
    fn round_robin_collects_full_series_for_responsive_targets() {
        let internet = internet();
        let targets: Vec<IpAddr> = internet
            .devices()
            .iter()
            .filter(|d| d.responds_to_ping)
            .flat_map(|d| d.ipv4_addrs().into_iter().map(IpAddr::V4))
            .take(10)
            .collect();
        let prober = IpidProber::new(IpidProberConfig {
            rounds: 5,
            ..Default::default()
        });
        let series = prober.collect_round_robin(
            &internet,
            &targets,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        assert_eq!(series.len(), targets.len());
        for s in &series {
            assert_eq!(s.samples.len(), 5);
            assert!(s.is_usable());
            // Timestamps strictly increase.
            assert!(s.samples.windows(2).all(|w| w[1].time > w[0].time));
        }
    }

    #[test]
    fn unresponsive_targets_yield_empty_series() {
        let internet = internet();
        let bogus: Vec<IpAddr> = vec!["198.51.100.77".parse().unwrap()];
        let prober = IpidProber::new(IpidProberConfig {
            rounds: 3,
            ..Default::default()
        });
        let series =
            prober.collect_round_robin(&internet, &bogus, VantageKind::Distributed, SimTime::ZERO);
        assert_eq!(series.len(), 1);
        assert!(series[0].samples.is_empty());
        assert!(!series[0].is_usable());
    }

    #[test]
    fn interleaved_pair_from_shared_counter_interlocks() {
        let internet = internet();
        let Some(addrs) = pingable_device_addrs(&internet, true) else {
            // The tiny population may not contain a low-velocity shared
            // counter device that answers ping; nothing to assert then.
            return;
        };
        let prober = IpidProber::new(IpidProberConfig::default());
        let (a, b, merged) = prober.collect_interleaved_pair(
            &internet,
            addrs[0],
            addrs[1],
            10,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        assert_eq!(a.samples.len(), 10);
        assert_eq!(b.samples.len(), 10);
        assert_eq!(merged.len(), 20);
        // A single shared counter sampled alternately produces a globally
        // increasing sequence (modulo wrap, which cannot occur in 20 probes
        // at low velocity).
        let values: Vec<u16> = merged.iter().map(|(_, s)| s.ipid).collect();
        assert!(
            values.windows(2).all(|w| w[1] > w[0]),
            "shared counter must interlock: {values:?}"
        );
    }

    #[test]
    fn interleaved_pair_from_random_counters_does_not_interlock() {
        let internet = internet();
        let device = internet.devices().iter().find(|d| {
            d.responds_to_ping
                && d.ipv4_addrs().len() >= 2
                && matches!(d.ipid.lock().model(), IpidModel::Random)
        });
        let Some(device) = device else { return };
        let addrs: Vec<IpAddr> = device.ipv4_addrs().into_iter().map(IpAddr::V4).collect();
        let prober = IpidProber::new(IpidProberConfig::default());
        let (_, _, merged) = prober.collect_interleaved_pair(
            &internet,
            addrs[0],
            addrs[1],
            10,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        let values: Vec<u16> = merged.iter().map(|(_, s)| s.ipid).collect();
        assert!(!values.windows(2).all(|w| w[1] > w[0]));
    }
}
