//! IPv6 hitlists.
//!
//! The IPv6 address space cannot be swept, so the paper relies on a public
//! IPv6 hitlist (Gasser et al.) to know which addresses are worth probing.
//! The hitlist is inherently incomplete and biased, which caps the IPv6 and
//! dual-stack numbers — an effect the paper discusses.  Here the hitlist is
//! a seeded sample of the simulator's truly-active IPv6 service addresses,
//! optionally diluted with unresponsive addresses (hitlists contain plenty
//! of those, too).

use alias_netsim::Internet;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::net::Ipv6Addr;

/// A list of candidate IPv6 addresses to probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv6Hitlist {
    /// Candidate addresses, deduplicated, in hitlist order.
    pub addrs: Vec<Ipv6Addr>,
}

impl Ipv6Hitlist {
    /// Build a hitlist covering roughly `coverage` of the truly active IPv6
    /// service addresses, plus `stale_fraction` of additional unresponsive
    /// addresses (relative to the active count).
    pub fn generate(internet: &Internet, coverage: f64, stale_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must be a probability"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6c15_7135);
        let active = internet.active_ipv6_service_addrs();
        let mut addrs: Vec<Ipv6Addr> = active
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(coverage))
            .collect();

        // Stale / unresponsive entries: addresses inside announced prefixes
        // that no device currently holds.
        let stale_target = (active.len() as f64 * stale_fraction) as usize;
        let prefixes: Vec<_> = internet.ases().iter().map(|a| a.ipv6_prefix).collect();
        let mut added = 0;
        while added < stale_target && !prefixes.is_empty() {
            let prefix = prefixes[rng.gen_range(0..prefixes.len())];
            let offset: u64 = rng.gen_range(1_000_000..u32::MAX as u64);
            let addr = Ipv6Addr::from(u128::from(prefix.base) + offset as u128);
            if internet.lookup(std::net::IpAddr::V6(addr)).is_none() {
                addrs.push(addr);
                added += 1;
            }
        }
        addrs.sort();
        addrs.dedup();
        addrs.shuffle(&mut rng);
        Ipv6Hitlist { addrs }
    }

    /// Build a hitlist from an explicit address list (e.g. loaded from disk).
    pub fn from_addrs(addrs: Vec<Ipv6Addr>) -> Self {
        let mut addrs = addrs;
        addrs.sort();
        addrs.dedup();
        Ipv6Hitlist { addrs }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the hitlist is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::{InternetBuilder, InternetConfig};
    use std::collections::HashSet;

    fn internet() -> Internet {
        InternetBuilder::new(InternetConfig::tiny(31)).build()
    }

    #[test]
    fn coverage_controls_active_overlap() {
        let internet = internet();
        let expected_active: HashSet<Ipv6Addr> =
            internet.active_ipv6_service_addrs().into_iter().collect();
        assert!(!expected_active.is_empty());

        let full = Ipv6Hitlist::generate(&internet, 1.0, 0.0, 9);
        let full_set: HashSet<Ipv6Addr> = full.addrs.iter().copied().collect();
        assert_eq!(full_set, expected_active);

        let none = Ipv6Hitlist::generate(&internet, 0.0, 0.0, 9);
        assert!(none.is_empty());

        let half = Ipv6Hitlist::generate(&internet, 0.5, 0.0, 9);
        assert!(half.len() < full.len());
    }

    #[test]
    fn stale_entries_are_not_active_addresses() {
        let internet = internet();
        let expected_active: HashSet<Ipv6Addr> =
            internet.active_ipv6_service_addrs().into_iter().collect();
        let with_stale = Ipv6Hitlist::generate(&internet, 1.0, 0.5, 4);
        assert!(with_stale.len() > expected_active.len());
        let stale_count = with_stale
            .addrs
            .iter()
            .filter(|a| !expected_active.contains(a))
            .count();
        assert!(stale_count > 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let internet = internet();
        let a = Ipv6Hitlist::generate(&internet, 0.7, 0.2, 5);
        let b = Ipv6Hitlist::generate(&internet, 0.7, 0.2, 5);
        assert_eq!(a, b);
        let c = Ipv6Hitlist::generate(&internet, 0.7, 0.2, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn from_addrs_deduplicates() {
        let addr: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let list = Ipv6Hitlist::from_addrs(vec![addr, addr]);
        assert_eq!(list.len(), 1);
        assert!(!list.is_empty());
    }

    #[test]
    #[should_panic(expected = "coverage must be a probability")]
    fn bad_coverage_is_rejected() {
        let internet = internet();
        let _ = Ipv6Hitlist::generate(&internet, 1.5, 0.0, 1);
    }
}
