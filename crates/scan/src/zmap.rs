//! ZMap-style stateless SYN scanning.
//!
//! Phase one of the paper's methodology: "an Internet-wide TCP scan sending
//! a single SYN packet on port 22 and 179 using ZMap".  The scanner sweeps
//! every routed IPv4 prefix of the simulated Internet in a pseudorandom
//! order (so consecutive probes do not hammer one network), paced by a token
//! bucket, and records which addresses answered SYN-ACK on which port.

use crate::permute::IndexPermutation;
use crate::rate::TokenBucket;
use alias_netsim::{Internet, ProbeContext, SimTime, SynResult, VantageKind};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Configuration of a SYN scan.
#[derive(Debug, Clone)]
pub struct ZmapConfig {
    /// Ports to probe (one SYN per port per address).
    pub ports: Vec<u16>,
    /// Probe rate in packets per second.
    pub rate_pps: f64,
    /// Permutation seed.
    pub seed: u64,
}

impl Default for ZmapConfig {
    fn default() -> Self {
        ZmapConfig {
            ports: vec![22, 179],
            rate_pps: 100_000.0,
            seed: 0x5eed,
        }
    }
}

/// Results of a SYN scan.
#[derive(Debug, Clone, Default)]
pub struct ZmapResults {
    /// Responsive addresses per port, in the order they were discovered.
    pub responsive: HashMap<u16, Vec<IpAddr>>,
    /// Total SYN probes sent.
    pub probes_sent: u64,
    /// Simulated time the scan finished.
    pub finished_at: SimTime,
}

impl ZmapResults {
    /// Responsive addresses on `port` (empty slice if the port was not scanned).
    pub fn on_port(&self, port: u16) -> &[IpAddr] {
        self.responsive.get(&port).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The stateless SYN scanner.
#[derive(Debug, Clone)]
pub struct ZmapScanner {
    config: ZmapConfig,
}

impl ZmapScanner {
    /// Create a scanner with the given configuration.
    pub fn new(config: ZmapConfig) -> Self {
        ZmapScanner { config }
    }

    /// Sweep every routed IPv4 prefix of `internet`.
    pub fn scan_ipv4(
        &self,
        internet: &Internet,
        vantage: VantageKind,
        start: SimTime,
    ) -> ZmapResults {
        // Flatten the routed prefixes into a single index space so the
        // permutation spreads probes across all networks.
        let prefixes = internet.routed_v4_prefixes();
        let mut offsets = Vec::with_capacity(prefixes.len());
        let mut total: u64 = 0;
        for prefix in &prefixes {
            offsets.push(total);
            total += prefix.size();
        }
        let index_to_addr = |index: u64| -> Ipv4Addr {
            // Binary search for the prefix containing this index.
            let slot = match offsets.binary_search(&index) {
                Ok(exact) => exact,
                Err(insert) => insert - 1,
            };
            let prefix = prefixes[slot];
            Ipv4Addr::from(u32::from(prefix.base) + (index - offsets[slot]) as u32)
        };

        let mut results = ZmapResults::default();
        for &port in &self.config.ports {
            results.responsive.insert(port, Vec::new());
        }
        let mut bucket = TokenBucket::new(self.config.rate_pps, 64.0, start);
        let permutation = IndexPermutation::new(total, self.config.seed);
        let mut now = start;
        for index in permutation.iter() {
            let addr = IpAddr::V4(index_to_addr(index));
            for &port in &self.config.ports {
                now = bucket.acquire(now);
                results.probes_sent += 1;
                let ctx = ProbeContext { vantage, time: now };
                if internet.syn_probe(addr, port, &ctx) == SynResult::SynAck {
                    results
                        .responsive
                        .get_mut(&port)
                        .expect("port pre-registered")
                        .push(addr);
                }
            }
        }
        results.finished_at = now;
        results
    }

    /// Probe an explicit IPv6 target list (hitlist-driven, since sweeping
    /// the IPv6 space is impossible).
    pub fn scan_ipv6_list(
        &self,
        internet: &Internet,
        targets: &[Ipv6Addr],
        vantage: VantageKind,
        start: SimTime,
    ) -> ZmapResults {
        let mut results = ZmapResults::default();
        for &port in &self.config.ports {
            results.responsive.insert(port, Vec::new());
        }
        let mut bucket = TokenBucket::new(self.config.rate_pps, 64.0, start);
        let mut now = start;
        for &addr in targets {
            let addr = IpAddr::V6(addr);
            for &port in &self.config.ports {
                now = bucket.acquire(now);
                results.probes_sent += 1;
                let ctx = ProbeContext { vantage, time: now };
                if internet.syn_probe(addr, port, &ctx) == SynResult::SynAck {
                    results
                        .responsive
                        .get_mut(&port)
                        .expect("port pre-registered")
                        .push(addr);
                }
            }
        }
        results.finished_at = now;
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::{InternetBuilder, InternetConfig};
    use std::collections::HashSet;

    fn internet() -> Internet {
        InternetBuilder::new(InternetConfig::tiny(77)).build()
    }

    fn expected_ssh_addrs(internet: &Internet, vantage: VantageKind) -> HashSet<IpAddr> {
        internet
            .devices()
            .iter()
            .filter(|d| vantage == VantageKind::Distributed || d.visible_to_single_vp)
            .flat_map(|d| d.ssh_responding_addrs())
            .filter(|a| a.is_ipv4())
            .collect()
    }

    #[test]
    fn finds_exactly_the_responsive_ssh_addresses() {
        let internet = internet();
        let scanner = ZmapScanner::new(ZmapConfig {
            ports: vec![22],
            ..Default::default()
        });
        let results = scanner.scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        let found: HashSet<IpAddr> = results.on_port(22).iter().copied().collect();
        assert_eq!(
            found,
            expected_ssh_addrs(&internet, VantageKind::Distributed)
        );
        assert!(results.probes_sent > found.len() as u64);
        assert!(results.finished_at > SimTime::ZERO);
    }

    #[test]
    fn single_vp_misses_filtered_hosts() {
        let internet = internet();
        let scanner = ZmapScanner::new(ZmapConfig {
            ports: vec![22],
            ..Default::default()
        });
        let single = scanner.scan_ipv4(&internet, VantageKind::SingleVp, SimTime::ZERO);
        let distributed = scanner.scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        assert!(single.on_port(22).len() < distributed.on_port(22).len());
        assert_eq!(
            single.on_port(22).iter().copied().collect::<HashSet<_>>(),
            expected_ssh_addrs(&internet, VantageKind::SingleVp)
        );
    }

    #[test]
    fn responsive_lists_contain_no_duplicates() {
        let internet = internet();
        let scanner = ZmapScanner::new(ZmapConfig::default());
        let results = scanner.scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        for port in [22u16, 179] {
            let list = results.on_port(port);
            let unique: HashSet<&IpAddr> = list.iter().collect();
            assert_eq!(unique.len(), list.len(), "duplicates on port {port}");
        }
    }

    #[test]
    fn bgp_scan_finds_both_open_senders_and_silent_speakers() {
        let internet = internet();
        let scanner = ZmapScanner::new(ZmapConfig {
            ports: vec![179],
            ..Default::default()
        });
        let results = scanner.scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        let expected: HashSet<IpAddr> = internet
            .devices()
            .iter()
            .flat_map(|d| d.bgp_responding_addrs())
            .filter(|a| a.is_ipv4())
            .collect();
        assert_eq!(
            results.on_port(179).iter().copied().collect::<HashSet<_>>(),
            expected
        );
    }

    #[test]
    fn ipv6_list_scan_only_probes_the_list() {
        let internet = internet();
        let all_v6 = internet.active_ipv6_service_addrs();
        assert!(!all_v6.is_empty());
        let subset = &all_v6[..all_v6.len() / 2];
        let scanner = ZmapScanner::new(ZmapConfig {
            ports: vec![22],
            ..Default::default()
        });
        let results =
            scanner.scan_ipv6_list(&internet, subset, VantageKind::Distributed, SimTime::ZERO);
        assert_eq!(results.probes_sent, subset.len() as u64);
        for addr in results.on_port(22) {
            match addr {
                IpAddr::V6(v6) => assert!(subset.contains(v6)),
                IpAddr::V4(_) => panic!("IPv6 scan returned an IPv4 address"),
            }
        }
    }

    #[test]
    fn scan_duration_scales_with_rate() {
        let internet = internet();
        let fast = ZmapScanner::new(ZmapConfig {
            rate_pps: 1_000_000.0,
            ..Default::default()
        })
        .scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        let slow = ZmapScanner::new(ZmapConfig {
            rate_pps: 50_000.0,
            ..Default::default()
        })
        .scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        assert!(slow.finished_at > fast.finished_at);
    }
}
