//! ZMap-style stateless SYN scanning.
//!
//! Phase one of the paper's methodology: "an Internet-wide TCP scan sending
//! a single SYN packet on port 22 and 179 using ZMap".  The scanner sweeps
//! every routed IPv4 prefix of the simulated Internet in a pseudorandom
//! order (so consecutive probes do not hammer one network), paced by a token
//! bucket, and records which addresses answered SYN-ACK on which port.

use crate::permute::IndexPermutation;
use crate::rate::TokenBucket;
use crate::space::RoutedSpace;
use alias_netsim::{Internet, ProbeContext, SimTime, SynResult, VantageKind};
use alias_obs::{DeterminismClass, LazyCounter};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv6Addr};

/// SYN probes dispatched by ZMap sweeps.  A pure function of the routed
/// space and port list, accumulated at the serial assembly point.
static PROBES_EMITTED: LazyCounter = LazyCounter::new(
    "scan.probes_emitted",
    DeterminismClass::Deterministic,
    "probes",
    "scan",
);

/// Responsive (addr, port) pairs discovered by ZMap sweeps.
static RESPONSIVE_PAIRS: LazyCounter = LazyCounter::new(
    "scan.responsive_pairs",
    DeterminismClass::Deterministic,
    "pairs",
    "scan",
);

/// Simulated milliseconds the token bucket spent pacing ZMap sweeps —
/// sim-clock time, replayed from the serial schedule, not wall time.
static PACING_SIM_MS: LazyCounter = LazyCounter::new(
    "scan.pacing_sim_ms",
    DeterminismClass::Deterministic,
    "sim_ms",
    "scan",
);

/// Configuration of a SYN scan.
#[derive(Debug, Clone)]
pub struct ZmapConfig {
    /// Ports to probe (one SYN per port per address).
    pub ports: Vec<u16>,
    /// Probe rate in packets per second.
    pub rate_pps: f64,
    /// Permutation seed.
    pub seed: u64,
}

impl Default for ZmapConfig {
    fn default() -> Self {
        ZmapConfig {
            ports: vec![22, 179],
            rate_pps: 100_000.0,
            seed: 0x5eed,
        }
    }
}

/// Results of a SYN scan.
#[derive(Debug, Clone, Default)]
pub struct ZmapResults {
    /// Responsive addresses per port, in the order they were discovered.
    pub responsive: HashMap<u16, Vec<IpAddr>>,
    /// Total SYN probes sent.
    pub probes_sent: u64,
    /// Simulated time the scan finished.
    pub finished_at: SimTime,
}

impl ZmapResults {
    /// Responsive addresses on `port` (empty slice if the port was not scanned).
    pub fn on_port(&self, port: u16) -> &[IpAddr] {
        self.responsive.get(&port).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The stateless SYN scanner.
#[derive(Debug, Clone)]
pub struct ZmapScanner {
    config: ZmapConfig,
}

impl ZmapScanner {
    /// Create a scanner with the given configuration.
    pub fn new(config: ZmapConfig) -> Self {
        ZmapScanner { config }
    }

    /// Probe one raw-step slice of the permuted index space; the shard body
    /// shared by the serial and sharded IPv4 sweeps.
    ///
    /// The inner loop carries no pacing state: a SYN result does not depend
    /// on the probe's send time (the bucket schedule is replayed separately
    /// to date the results), and each address is resolved against the IP
    /// index once — the unrouted majority of the swept space is skipped
    /// without per-port probe dispatch.
    fn syn_slice(
        &self,
        internet: &Internet,
        vantage: VantageKind,
        start: SimTime,
        space: &RoutedSpace,
        permutation: &IndexPermutation,
        range: &std::ops::Range<u64>,
    ) -> Vec<Vec<IpAddr>> {
        let ports = &self.config.ports;
        let mut found: Vec<Vec<IpAddr>> = vec![Vec::new(); ports.len()];
        let ctx = ProbeContext {
            vantage,
            time: start,
        };
        for index in permutation.iter_raw_range(range.start, range.end) {
            let addr = IpAddr::V4(space.addr_at(index));
            // Absent addresses time out on every port; resolve once and move
            // on instead of hashing the address once per port.
            let Some((device_id, iface_idx)) = internet.lookup(addr) else {
                continue;
            };
            for (slot, &port) in ports.iter().enumerate() {
                if internet.syn_probe_at(device_id, iface_idx, port, &ctx) == SynResult::SynAck {
                    found[slot].push(addr);
                }
            }
        }
        found
    }

    /// Assemble per-shard (or whole-scan) port hit lists into results, with
    /// the finish time from the replayed serial pacing schedule.
    fn assemble_results(
        &self,
        per_shard: Vec<Vec<Vec<IpAddr>>>,
        probes_sent: u64,
        start: SimTime,
    ) -> ZmapResults {
        let ports = &self.config.ports;
        let mut results = ZmapResults::default();
        for &port in ports {
            results.responsive.insert(port, Vec::new());
        }
        for found in per_shard {
            for (slot, addrs) in found.into_iter().enumerate() {
                results
                    .responsive
                    .get_mut(&ports[slot])
                    .expect("port pre-registered")
                    .extend(addrs);
            }
        }
        results.probes_sent = probes_sent;
        // Replay the serial pacing schedule to land on the identical finish
        // time (the bucket is a pure function of the probe count).
        let mut bucket = TokenBucket::new(self.config.rate_pps, 64.0, start);
        results.finished_at = bucket.advance(start, probes_sent);
        PROBES_EMITTED.add(probes_sent);
        RESPONSIVE_PAIRS.add(
            results
                .responsive
                // lint:allow(det-hash-iter): summing lengths — commutative over visit order
                .values()
                .map(|addrs| addrs.len() as u64)
                .sum(),
        );
        PACING_SIM_MS.add(results.finished_at.since(start).as_millis());
        results
    }

    /// Sweep every routed IPv4 prefix of `internet` on a single thread.
    pub fn scan_ipv4(
        &self,
        internet: &Internet,
        vantage: VantageKind,
        start: SimTime,
    ) -> ZmapResults {
        // Flatten the routed prefixes into a single index space so the
        // permutation spreads probes across all networks.
        let space = RoutedSpace::of(internet);
        let permutation = IndexPermutation::new(space.len(), self.config.seed);
        let found = self.syn_slice(
            internet,
            vantage,
            start,
            &space,
            &permutation,
            &(0..permutation.raw_len()),
        );
        self.assemble_results(
            vec![found],
            space.len() * self.config.ports.len() as u64,
            start,
        )
    }

    /// Sweep every routed IPv4 prefix with `threads` shard workers over
    /// disjoint slices of the permuted address space.
    ///
    /// Output is byte-identical to [`Self::scan_ipv4`] for any thread
    /// count: a SYN result does not depend on the probe's send time, shard
    /// outputs are concatenated in shard order (which reproduces the serial
    /// discovery order), and the finish time is the serial token-bucket
    /// schedule replayed over the same probe count.
    pub fn scan_ipv4_sharded(
        &self,
        internet: &Internet,
        vantage: VantageKind,
        start: SimTime,
        threads: usize,
    ) -> ZmapResults {
        if threads <= 1 {
            return self.scan_ipv4(internet, vantage, start);
        }
        let space = RoutedSpace::of(internet);
        let permutation = IndexPermutation::new(space.len(), self.config.seed);

        // Shard the raw LCG step range: concatenating the in-range values of
        // contiguous raw-step slices reproduces the serial permutation order.
        let ranges = alias_exec::split_even(permutation.raw_len(), alias_exec::shards_for(threads));
        let per_shard: Vec<Vec<Vec<IpAddr>>> =
            alias_exec::shard_map(ranges.len(), threads, |shard| {
                self.syn_slice(
                    internet,
                    vantage,
                    start,
                    &space,
                    &permutation,
                    &ranges[shard],
                )
            });
        self.assemble_results(
            per_shard,
            space.len() * self.config.ports.len() as u64,
            start,
        )
    }

    /// Probe one slice of an IPv6 target list; shared by the serial and
    /// sharded hitlist scans.  Same loop shape as [`Self::syn_slice`].
    fn syn_v6_slice(
        &self,
        internet: &Internet,
        targets: &[Ipv6Addr],
        vantage: VantageKind,
        start: SimTime,
    ) -> Vec<Vec<IpAddr>> {
        let ports = &self.config.ports;
        let mut found: Vec<Vec<IpAddr>> = vec![Vec::new(); ports.len()];
        let ctx = ProbeContext {
            vantage,
            time: start,
        };
        for &addr in targets {
            let addr = IpAddr::V6(addr);
            let Some((device_id, iface_idx)) = internet.lookup(addr) else {
                continue;
            };
            for (slot, &port) in ports.iter().enumerate() {
                if internet.syn_probe_at(device_id, iface_idx, port, &ctx) == SynResult::SynAck {
                    found[slot].push(addr);
                }
            }
        }
        found
    }

    /// Probe an explicit IPv6 target list (hitlist-driven, since sweeping
    /// the IPv6 space is impossible).
    pub fn scan_ipv6_list(
        &self,
        internet: &Internet,
        targets: &[Ipv6Addr],
        vantage: VantageKind,
        start: SimTime,
    ) -> ZmapResults {
        let found = self.syn_v6_slice(internet, targets, vantage, start);
        self.assemble_results(
            vec![found],
            targets.len() as u64 * self.config.ports.len() as u64,
            start,
        )
    }

    /// [`Self::scan_ipv6_list`] with `threads` shard workers over disjoint
    /// slices of the target list; byte-identical output for any thread
    /// count.
    pub fn scan_ipv6_list_sharded(
        &self,
        internet: &Internet,
        targets: &[Ipv6Addr],
        vantage: VantageKind,
        start: SimTime,
        threads: usize,
    ) -> ZmapResults {
        if threads <= 1 {
            return self.scan_ipv6_list(internet, targets, vantage, start);
        }
        let ranges = alias_exec::split_even(targets.len() as u64, alias_exec::shards_for(threads));
        let per_shard: Vec<Vec<Vec<IpAddr>>> =
            alias_exec::shard_map(ranges.len(), threads, |shard| {
                let range = &ranges[shard];
                self.syn_v6_slice(
                    internet,
                    &targets[range.start as usize..range.end as usize],
                    vantage,
                    start,
                )
            });
        self.assemble_results(
            per_shard,
            targets.len() as u64 * self.config.ports.len() as u64,
            start,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::{InternetBuilder, InternetConfig};
    use std::collections::HashSet;

    fn internet() -> Internet {
        InternetBuilder::new(InternetConfig::tiny(77)).build()
    }

    /// Sorted distinct expected addresses — scan results are compared as
    /// sorted vectors, no address-keyed sets needed.
    fn expected_ssh_addrs(internet: &Internet, vantage: VantageKind) -> Vec<IpAddr> {
        let mut addrs: Vec<IpAddr> = internet
            .devices()
            .iter()
            .filter(|d| vantage == VantageKind::Distributed || d.visible_to_single_vp)
            .flat_map(|d| d.ssh_responding_addrs())
            .filter(|a| a.is_ipv4())
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs
    }

    /// The responsive list of one port as a sorted vector.
    fn sorted_found(results: &ZmapResults, port: u16) -> Vec<IpAddr> {
        let mut found = results.on_port(port).to_vec();
        found.sort_unstable();
        found
    }

    #[test]
    fn finds_exactly_the_responsive_ssh_addresses() {
        let internet = internet();
        let scanner = ZmapScanner::new(ZmapConfig {
            ports: vec![22],
            ..Default::default()
        });
        let results = scanner.scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        let found = sorted_found(&results, 22);
        assert_eq!(
            found,
            expected_ssh_addrs(&internet, VantageKind::Distributed)
        );
        assert!(results.probes_sent > found.len() as u64);
        assert!(results.finished_at > SimTime::ZERO);
    }

    #[test]
    fn single_vp_misses_filtered_hosts() {
        let internet = internet();
        let scanner = ZmapScanner::new(ZmapConfig {
            ports: vec![22],
            ..Default::default()
        });
        let single = scanner.scan_ipv4(&internet, VantageKind::SingleVp, SimTime::ZERO);
        let distributed = scanner.scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        assert!(single.on_port(22).len() < distributed.on_port(22).len());
        assert_eq!(
            sorted_found(&single, 22),
            expected_ssh_addrs(&internet, VantageKind::SingleVp)
        );
    }

    #[test]
    fn responsive_lists_contain_no_duplicates() {
        let internet = internet();
        let scanner = ZmapScanner::new(ZmapConfig::default());
        let results = scanner.scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        for port in [22u16, 179] {
            let list = results.on_port(port);
            let unique: HashSet<&IpAddr> = list.iter().collect();
            assert_eq!(unique.len(), list.len(), "duplicates on port {port}");
        }
    }

    #[test]
    fn bgp_scan_finds_both_open_senders_and_silent_speakers() {
        let internet = internet();
        let scanner = ZmapScanner::new(ZmapConfig {
            ports: vec![179],
            ..Default::default()
        });
        let results = scanner.scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        let mut expected: Vec<IpAddr> = internet
            .devices()
            .iter()
            .flat_map(|d| d.bgp_responding_addrs())
            .filter(|a| a.is_ipv4())
            .collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(sorted_found(&results, 179), expected);
    }

    #[test]
    fn ipv6_list_scan_only_probes_the_list() {
        let internet = internet();
        let all_v6 = internet.active_ipv6_service_addrs();
        assert!(!all_v6.is_empty());
        let subset = &all_v6[..all_v6.len() / 2];
        let scanner = ZmapScanner::new(ZmapConfig {
            ports: vec![22],
            ..Default::default()
        });
        let results =
            scanner.scan_ipv6_list(&internet, subset, VantageKind::Distributed, SimTime::ZERO);
        assert_eq!(results.probes_sent, subset.len() as u64);
        for addr in results.on_port(22) {
            match addr {
                IpAddr::V6(v6) => assert!(subset.contains(v6)),
                IpAddr::V4(_) => panic!("IPv6 scan returned an IPv4 address"),
            }
        }
    }

    #[test]
    fn sharded_ipv4_scan_is_byte_identical_to_serial() {
        for seed in [77u64, 9] {
            let internet = InternetBuilder::new(InternetConfig::tiny(seed)).build();
            let scanner = ZmapScanner::new(ZmapConfig {
                seed,
                ..Default::default()
            });
            let serial = scanner.scan_ipv4(&internet, VantageKind::SingleVp, SimTime::ZERO);
            for threads in [2usize, 7] {
                let sharded = scanner.scan_ipv4_sharded(
                    &internet,
                    VantageKind::SingleVp,
                    SimTime::ZERO,
                    threads,
                );
                for port in [22u16, 179] {
                    assert_eq!(
                        sharded.on_port(port),
                        serial.on_port(port),
                        "seed={seed} threads={threads} port={port}"
                    );
                }
                assert_eq!(sharded.probes_sent, serial.probes_sent);
                assert_eq!(sharded.finished_at, serial.finished_at);
            }
        }
    }

    #[test]
    fn sharded_ipv6_list_scan_is_byte_identical_to_serial() {
        let internet = internet();
        let targets = internet.active_ipv6_service_addrs();
        let scanner = ZmapScanner::new(ZmapConfig::default());
        let serial =
            scanner.scan_ipv6_list(&internet, &targets, VantageKind::Distributed, SimTime::ZERO);
        for threads in [2usize, 7] {
            let sharded = scanner.scan_ipv6_list_sharded(
                &internet,
                &targets,
                VantageKind::Distributed,
                SimTime::ZERO,
                threads,
            );
            for port in [22u16, 179] {
                assert_eq!(sharded.on_port(port), serial.on_port(port));
            }
            assert_eq!(sharded.probes_sent, serial.probes_sent);
            assert_eq!(sharded.finished_at, serial.finished_at);
        }
    }

    #[test]
    fn scan_duration_scales_with_rate() {
        let internet = internet();
        let fast = ZmapScanner::new(ZmapConfig {
            rate_pps: 1_000_000.0,
            ..Default::default()
        })
        .scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        let slow = ZmapScanner::new(ZmapConfig {
            rate_pps: 50_000.0,
            ..Default::default()
        })
        .scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO);
        assert!(slow.finished_at > fast.finished_at);
    }
}
