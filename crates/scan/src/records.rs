//! Observation records produced by the scanners.
//!
//! A [`ServiceObservation`] is the unit of measurement data consumed by the
//! identifier-extraction code in `alias-core`: one responsive
//! (address, port, protocol) with the parsed application-layer material and
//! provenance metadata (data source, timestamp, AS annotation).

use alias_netsim::{ServiceProtocol, SimTime};
use alias_wire::bgp::OpenMessage;
use alias_wire::snmp::EngineId;
use alias_wire::ssh::SshObservation;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Where a record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataSource {
    /// The toolkit's own single-VP active measurements.
    Active,
    /// The Censys-like distributed snapshot.
    Censys,
}

impl DataSource {
    /// Short label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DataSource::Active => "active",
            DataSource::Censys => "censys",
        }
    }
}

/// Parsed application-layer material of one observation.
//
// `Ssh` dwarfs the other variants, but it is also by far the most common
// one in a campaign, so boxing it would add an allocation to the hot path
// without shrinking the typical observation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServicePayload {
    /// An SSH banner exchange (banner, KEXINIT, host key where obtained).
    Ssh(SshObservation),
    /// A BGP exchange: the OPEN message and whether a Cease notification
    /// followed.
    Bgp {
        /// The OPEN message, if the speaker sent one.
        open: OpenMessage,
        /// Whether a NOTIFICATION (connection rejected) followed the OPEN.
        notification_seen: bool,
    },
    /// An SNMPv3 engine-discovery report.
    Snmpv3 {
        /// The authoritative engine ID.
        engine_id: EngineId,
        /// Engine boots counter.
        engine_boots: i64,
        /// Engine time in seconds.
        engine_time: i64,
    },
}

impl ServicePayload {
    /// The protocol this payload belongs to.
    pub fn protocol(&self) -> ServiceProtocol {
        match self {
            ServicePayload::Ssh(_) => ServiceProtocol::Ssh,
            ServicePayload::Bgp { .. } => ServiceProtocol::Bgp,
            ServicePayload::Snmpv3 { .. } => ServiceProtocol::Snmpv3,
        }
    }
}

/// One responsive (address, port) with parsed payload and provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceObservation {
    /// The probed address.
    pub addr: IpAddr,
    /// The TCP/UDP port probed.
    pub port: u16,
    /// Data source.
    pub source: DataSource,
    /// When the observation was made (simulated time).
    pub timestamp: SimTime,
    /// The origin AS of the address, as a routing-table lookup would report.
    pub asn: Option<u32>,
    /// Parsed payload.
    pub payload: ServicePayload,
}

impl ServiceObservation {
    /// The protocol of the observation.
    pub fn protocol(&self) -> ServiceProtocol {
        self.payload.protocol()
    }

    /// Whether the observation is on the protocol's default port (the paper
    /// restricts Censys data to default ports).
    pub fn is_default_port(&self) -> bool {
        self.port == self.protocol().default_port()
    }

    /// Whether the observed address is IPv6.
    pub fn is_ipv6(&self) -> bool {
        self.addr.is_ipv6()
    }
}

/// A push-based consumer of observations.
///
/// The streaming counterpart to collecting observations into a `Vec` first:
/// producers ([`crate::campaign::CampaignData::stream_into`], custom
/// replayers) feed records one at a time, so a consumer that only needs a
/// single pass — an identifier grouper, a counter, a filter — never forces
/// the producer to materialise intermediate `Vec<&ServiceObservation>`
/// slices on the hot path.
pub trait ObservationSink {
    /// Consume one observation.
    fn accept(&mut self, observation: &ServiceObservation);

    /// Consume every observation of an iterator, in order.
    fn accept_all<'a, I>(&mut self, observations: I)
    where
        I: IntoIterator<Item = &'a ServiceObservation>,
        Self: Sized,
    {
        for observation in observations {
            self.accept(observation);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_wire::ssh::{Banner, HostKey, HostKeyAlgorithm, KexInit};
    use std::net::Ipv4Addr;

    fn ssh_observation(port: u16) -> ServiceObservation {
        ServiceObservation {
            addr: IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1)),
            port,
            source: DataSource::Active,
            timestamp: SimTime::from_secs(10),
            asn: Some(14_061),
            payload: ServicePayload::Ssh(SshObservation {
                banner: Banner::new("OpenSSH_8.9p1", None).unwrap(),
                kex_init: Some(KexInit::typical_openssh()),
                host_key: Some(HostKey::new(HostKeyAlgorithm::Ed25519, vec![1; 32])),
            }),
        }
    }

    #[test]
    fn protocol_and_port_helpers() {
        let on_default = ssh_observation(22);
        assert_eq!(on_default.protocol(), ServiceProtocol::Ssh);
        assert!(on_default.is_default_port());
        assert!(!on_default.is_ipv6());
        let off_default = ssh_observation(2222);
        assert!(!off_default.is_default_port());
    }

    #[test]
    fn data_source_labels() {
        assert_eq!(DataSource::Active.name(), "active");
        assert_eq!(DataSource::Censys.name(), "censys");
        assert!(DataSource::Active < DataSource::Censys);
    }

    #[test]
    fn payload_protocols() {
        let snmp = ServicePayload::Snmpv3 {
            engine_id: EngineId::from_enterprise_mac(9, [0; 6]),
            engine_boots: 1,
            engine_time: 2,
        };
        assert_eq!(snmp.protocol(), ServiceProtocol::Snmpv3);
    }
}
