//! Observation records produced by the scanners.
//!
//! The record types moved to `alias-store` (one layer down) when
//! observation storage went columnar — the row type, the payload enum and
//! the streaming [`ObservationSink`] trait all live next to the
//! [`ObservationStore`](alias_store::ObservationStore) now.  This module
//! re-exports them so every existing `alias_scan::records::...` (and
//! root-level `alias_scan::...`) import keeps working.

pub use alias_store::records::{
    parse_payload, DataSource, ObservationSink, ServiceObservation, ServicePayload,
};
