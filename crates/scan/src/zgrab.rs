//! ZGrab2-style application-layer scanning.
//!
//! Phase two of the paper's methodology: for every address that answered the
//! SYN scan, complete the TCP handshake and record the protocol exchange —
//! for SSH the banner, `SSH_MSG_KEXINIT` and the host key from the
//! key-exchange reply; for BGP the unsolicited OPEN (and the NOTIFICATION
//! that usually follows).  The captured bytes are parsed with `alias-wire`
//! and emitted as [`ServiceObservation`] records.

use crate::rate::ProbeSchedule;
use crate::records::{DataSource, ServiceObservation};
use alias_netsim::{Internet, ProbeContext, ServiceProtocol, SimTime, VantageKind};
use alias_store::ShardColumns;
use std::net::IpAddr;

// The payload parser moved next to the record types in `alias-store`;
// re-exported here because scanner callers (e.g. `alias-censys`) import it
// from this module.
pub use alias_store::records::parse_payload;

/// Configuration of the application-layer scanner.
#[derive(Debug, Clone)]
pub struct ZgrabConfig {
    /// Connection attempts per second.
    pub rate_pps: f64,
    /// Data source label stamped on produced records.
    pub source: DataSource,
}

impl Default for ZgrabConfig {
    fn default() -> Self {
        ZgrabConfig {
            rate_pps: 20_000.0,
            source: DataSource::Active,
        }
    }
}

/// The application-layer scanner.
#[derive(Debug, Clone)]
pub struct ZgrabScanner {
    config: ZgrabConfig,
}

impl ZgrabScanner {
    /// Create a scanner with the given configuration.
    pub fn new(config: ZgrabConfig) -> Self {
        ZgrabScanner { config }
    }

    /// Grab banners from `targets` on `port`, interpreting responses as
    /// `protocol`.  Unresponsive targets and unparsable responses are
    /// silently skipped, exactly as a large-scale scan tolerates them.
    pub fn grab(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        port: u16,
        protocol: ServiceProtocol,
        vantage: VantageKind,
        start: SimTime,
    ) -> Vec<ServiceObservation> {
        self.grab_columns(internet, targets, port, protocol, vantage, start)
            .into_observations()
    }

    /// [`Self::grab`], emitting straight into shard columns (interned
    /// addresses, no row structs) — the form the campaign store absorbs.
    pub fn grab_columns(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        port: u16,
        protocol: ServiceProtocol,
        vantage: VantageKind,
        start: SimTime,
    ) -> ShardColumns {
        let mut schedule = ProbeSchedule::new(self.config.rate_pps, 32.0, start);
        let mut columns = ShardColumns::with_capacity(targets.len());
        let mut scratch = Vec::new();
        self.grab_slice(
            internet,
            targets,
            port,
            protocol,
            vantage,
            &mut schedule,
            &mut scratch,
            &mut columns,
        );
        columns
    }

    /// The probe loop shared verbatim by the serial and sharded paths: one
    /// paced session attempt per target, drawing send times from
    /// `schedule`, capturing session bytes into the reusable `scratch`
    /// buffer, and pushing results into `columns` (the address is interned
    /// shard-locally as it is observed).  Keeping a single copy is what
    /// makes the byte-identity contract between the two paths structural
    /// rather than maintained by hand.
    ///
    /// Each target is resolved against the IP index exactly once; the probe
    /// dispatch and the ASN attribution reuse the resolved interface.
    #[allow(clippy::too_many_arguments)]
    fn grab_slice(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        port: u16,
        protocol: ServiceProtocol,
        vantage: VantageKind,
        schedule: &mut ProbeSchedule,
        scratch: &mut Vec<u8>,
        columns: &mut ShardColumns,
    ) {
        for &addr in targets {
            let now = schedule.next_send_time();
            let Some((device_id, iface_idx)) = internet.lookup(addr) else {
                continue;
            };
            let ctx = ProbeContext { vantage, time: now };
            if !internet.service_session_into(device_id, iface_idx, port, &ctx, scratch) {
                continue;
            }
            let Some(payload) = parse_payload(protocol, scratch) else {
                continue;
            };
            columns.push(
                addr,
                port,
                self.config.source,
                now,
                Some(internet.asn_at(device_id, iface_idx).0),
                payload,
            );
        }
    }

    /// [`Self::grab`] with `threads` shard workers over disjoint slices of
    /// the target list.
    #[allow(clippy::too_many_arguments)]
    pub fn grab_sharded(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        port: u16,
        protocol: ServiceProtocol,
        vantage: VantageKind,
        start: SimTime,
        threads: usize,
    ) -> Vec<ServiceObservation> {
        self.grab_columns_sharded(internet, targets, port, protocol, vantage, start, threads)
            .into_iter()
            .flat_map(ShardColumns::into_observations)
            .collect()
    }

    /// [`Self::grab_columns`] with `threads` shard workers over disjoint
    /// slices of the target list, returning the per-shard column chunks in
    /// shard order.
    ///
    /// Byte-identical to the serial path for any thread count: each shard
    /// starts from the token-bucket state the serial scan would have
    /// reached at the shard's first target (fast-forwarded on the calling
    /// thread), so every observation carries the exact serial timestamp —
    /// which matters because session payloads fold the probe time into
    /// their bytes (SSH KEXINIT cookies, SNMP engine time).
    #[allow(clippy::too_many_arguments)]
    pub fn grab_columns_sharded(
        &self,
        internet: &Internet,
        targets: &[IpAddr],
        port: u16,
        protocol: ServiceProtocol,
        vantage: VantageKind,
        start: SimTime,
        threads: usize,
    ) -> Vec<ShardColumns> {
        if threads <= 1 {
            return vec![self.grab_columns(internet, targets, port, protocol, vantage, start)];
        }
        let ranges = alias_exec::split_even(targets.len() as u64, alias_exec::shards_for(threads));
        // Fast-forward the schedule through the shard boundaries so each
        // worker resumes the pacing exactly where the serial loop would be.
        // The skip is batched per send time, so dealing out all boundaries
        // costs one serial pass over the schedule's *groups*, not its probes.
        let mut boundary = ProbeSchedule::new(self.config.rate_pps, 32.0, start);
        let starts: Vec<ProbeSchedule> = ranges
            .iter()
            .map(|range| {
                let state = boundary.clone();
                boundary.skip(range.end - range.start);
                state
            })
            .collect();
        let scratch_pool = alias_exec::ScratchPool::<Vec<u8>>::new();
        let scratch_pool = &scratch_pool;
        alias_exec::shard_map(ranges.len(), threads, |shard| {
            let range = &ranges[shard];
            let mut schedule = starts[shard].clone();
            let mut columns = ShardColumns::with_capacity((range.end - range.start) as usize);
            let mut scratch = scratch_pool.take();
            self.grab_slice(
                internet,
                &targets[range.start as usize..range.end as usize],
                port,
                protocol,
                vantage,
                &mut schedule,
                &mut scratch,
                &mut columns,
            );
            scratch_pool.put(scratch);
            columns
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::ServicePayload;
    use crate::zmap::{ZmapConfig, ZmapScanner};
    use alias_netsim::{InternetBuilder, InternetConfig};

    fn internet() -> Internet {
        InternetBuilder::new(InternetConfig::tiny(123)).build()
    }

    fn ssh_targets(internet: &Internet) -> Vec<IpAddr> {
        ZmapScanner::new(ZmapConfig {
            ports: vec![22],
            ..Default::default()
        })
        .scan_ipv4(internet, VantageKind::Distributed, SimTime::ZERO)
        .on_port(22)
        .to_vec()
    }

    #[test]
    fn ssh_grab_yields_complete_observations() {
        let internet = internet();
        let targets = ssh_targets(&internet);
        assert!(!targets.is_empty());
        let scanner = ZgrabScanner::new(ZgrabConfig::default());
        let observations = scanner.grab(
            &internet,
            &targets,
            22,
            ServiceProtocol::Ssh,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        assert_eq!(observations.len(), targets.len());
        for obs in &observations {
            assert_eq!(obs.protocol(), ServiceProtocol::Ssh);
            assert!(obs.asn.is_some());
            match &obs.payload {
                ServicePayload::Ssh(ssh) => assert!(ssh.is_complete()),
                other => panic!("unexpected payload {other:?}"),
            }
        }
    }

    #[test]
    fn bgp_grab_skips_silent_speakers() {
        let internet = internet();
        let targets: Vec<IpAddr> = ZmapScanner::new(ZmapConfig {
            ports: vec![179],
            ..Default::default()
        })
        .scan_ipv4(&internet, VantageKind::Distributed, SimTime::ZERO)
        .on_port(179)
        .to_vec();
        assert!(!targets.is_empty());
        let scanner = ZgrabScanner::new(ZgrabConfig::default());
        let observations = scanner.grab(
            &internet,
            &targets,
            179,
            ServiceProtocol::Bgp,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        // Some speakers send an OPEN, the silent ones are dropped.
        assert!(!observations.is_empty());
        assert!(observations.len() < targets.len());
        for obs in &observations {
            match &obs.payload {
                ServicePayload::Bgp {
                    open,
                    notification_seen,
                } => {
                    assert_eq!(open.version, 4);
                    assert!(*notification_seen);
                }
                other => panic!("unexpected payload {other:?}"),
            }
        }
    }

    #[test]
    fn sharded_grab_is_byte_identical_to_serial() {
        // Timestamps feed into the SSH KEXINIT cookie bytes, so equality of
        // whole observations proves the shard fast-forward reproduces the
        // serial pacing schedule exactly.
        let internet = internet();
        let targets = ssh_targets(&internet);
        assert!(targets.len() > 8, "need enough targets to shard");
        let scanner = ZgrabScanner::new(ZgrabConfig::default());
        let serial = scanner.grab(
            &internet,
            &targets,
            22,
            ServiceProtocol::Ssh,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        for threads in [2usize, 7] {
            let sharded = scanner.grab_sharded(
                &internet,
                &targets,
                22,
                ServiceProtocol::Ssh,
                VantageKind::Distributed,
                SimTime::ZERO,
                threads,
            );
            assert_eq!(sharded, serial, "threads={threads}");
        }
    }

    #[test]
    fn unresponsive_targets_are_skipped() {
        let internet = internet();
        let scanner = ZgrabScanner::new(ZgrabConfig::default());
        let bogus: Vec<IpAddr> = vec!["203.0.113.99".parse().unwrap()];
        let observations = scanner.grab(
            &internet,
            &bogus,
            22,
            ServiceProtocol::Ssh,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        assert!(observations.is_empty());
    }

    #[test]
    fn parse_payload_rejects_garbage() {
        assert!(parse_payload(ServiceProtocol::Ssh, b"not ssh at all").is_none());
        assert!(parse_payload(ServiceProtocol::Bgp, &[0xff; 10]).is_none());
        assert!(parse_payload(ServiceProtocol::Bgp, &[]).is_none());
        assert!(parse_payload(ServiceProtocol::Snmpv3, &[]).is_none());
    }

    #[test]
    fn censys_source_is_stamped_on_records() {
        let internet = internet();
        let targets = ssh_targets(&internet);
        let scanner = ZgrabScanner::new(ZgrabConfig {
            source: DataSource::Censys,
            rate_pps: 50_000.0,
        });
        let observations = scanner.grab(
            &internet,
            &targets[..1],
            22,
            ServiceProtocol::Ssh,
            VantageKind::Distributed,
            SimTime::ZERO,
        );
        assert_eq!(observations[0].source, DataSource::Censys);
    }
}
