//! Span tracing and the workspace's only wall-clock access.
//!
//! This module is the single place the workspace reads the real clock —
//! the `det-wallclock` lint designates `crates/obs/` and nothing else.
//! Everything downstream measures durations through [`Stopwatch`] or
//! [`SpanGuard`] and receives a [`Duration`] back; no other crate ever
//! holds an `Instant`.

use crate::registry::registry;
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// A started wall-clock timer (the harness-facing primitive: ceiling
/// timers, ad-hoc measurements).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed whole milliseconds (`u64`, saturating).
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// One entry of the thread-local span stack.
struct Frame {
    path: String,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Enter a span: the guard measures until [`SpanGuard::finish`] (or
/// drop) and feeds the per-path span statistics.  Spans nest through a
/// thread-local stack — a child's path is `parent/child`, and its
/// elapsed time is attributed to the parent's child time, so snapshots
/// can report *self* time per path.
pub fn span(name: &str) -> SpanGuard {
    enter(name)
}

/// [`span`] with an owned path (what the [`span!`](crate::span!) macro
/// formats into).
pub fn span_owned(name: String) -> SpanGuard {
    enter(&name)
}

fn enter(name: &str) -> SpanGuard {
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_owned(),
        };
        stack.push(Frame {
            path: path.clone(),
            child_ns: 0,
        });
        path
    });
    SpanGuard {
        path,
        started: Instant::now(),
        finished: false,
    }
}

/// An entered span; finishes (records its stats) on [`Self::finish`] or
/// drop.  Guards must finish in LIFO order — let scoping do it.
#[derive(Debug)]
pub struct SpanGuard {
    path: String,
    started: Instant,
    finished: bool,
}

impl SpanGuard {
    /// The span's full `/`-separated path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Finish the span now and return its measured duration (what the
    /// resolver's `StageTimings` are derived from).
    pub fn finish(mut self) -> Duration {
        self.complete()
    }

    fn complete(&mut self) -> Duration {
        self.finished = true;
        let elapsed = self.started.elapsed();
        let elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let child_ns = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop().expect("span stack underflow");
            debug_assert_eq!(frame.path, self.path, "spans must finish in LIFO order");
            if let Some(parent) = stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(elapsed_ns);
            }
            frame.child_ns
        });
        registry().record_span(&self.path, elapsed_ns, child_ns);
        elapsed
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.complete();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_attribute_child_time() {
        {
            let outer = span("test.span.outer");
            assert_eq!(outer.path(), "test.span.outer");
            {
                let inner = span("inner");
                assert_eq!(inner.path(), "test.span.outer/inner");
                std::thread::sleep(Duration::from_millis(2));
                let measured = inner.finish();
                assert!(measured >= Duration::from_millis(2));
            }
            drop(outer);
        }
        let snapshot = registry().snapshot();
        let outer = snapshot
            .spans
            .iter()
            .find(|s| s.path == "test.span.outer")
            .expect("outer span recorded");
        let inner = snapshot
            .spans
            .iter()
            .find(|s| s.path == "test.span.outer/inner")
            .expect("inner span recorded");
        assert!(outer.count >= 1 && inner.count >= 1);
        // The parent's self time excludes the child's sleep.
        assert!(outer.self_ns <= outer.total_ns);
        assert!(inner.total_ns >= 2_000_000);
    }

    #[test]
    fn span_macro_formats_paths() {
        let literal = crate::span!("test.macro.literal");
        assert_eq!(literal.path(), "test.macro.literal");
        drop(literal);
        let formatted = crate::span!("test.macro.shard{}", 3);
        assert_eq!(formatted.path(), "test.macro.shard3");
        drop(formatted);
    }

    #[test]
    fn stopwatch_measures_forward() {
        let watch = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        assert!(watch.elapsed() >= Duration::from_millis(1));
        let _ = watch.elapsed_ms();
    }
}
