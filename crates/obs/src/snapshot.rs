//! Point-in-time snapshots and their renders: full JSON, the
//! deterministic-subset JSON (byte-identical across thread counts), and
//! a Prometheus text exposition.

use crate::metric::DeterminismClass;
use std::fmt::Write as _;

/// Power-of-four microsecond boundaries shared by the duration
/// histograms (shard bodies span ~µs at tiny scale to ~seconds at
/// `huge`).
pub const DURATION_US_BOUNDARIES: &[u64] = &[
    64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
];

/// A sampled counter.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Metric name.
    pub name: &'static str,
    /// Determinism class.
    pub class: DeterminismClass,
    /// Unit label.
    pub unit: &'static str,
    /// Emitting stage.
    pub stage: &'static str,
    /// Sampled total.
    pub value: u64,
}

/// A sampled gauge.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Metric name.
    pub name: &'static str,
    /// Determinism class.
    pub class: DeterminismClass,
    /// Unit label.
    pub unit: &'static str,
    /// Emitting stage.
    pub stage: &'static str,
    /// Sampled value.
    pub value: u64,
}

/// A sampled histogram.
#[derive(Debug, Clone)]
pub struct HistogramSample {
    /// Metric name.
    pub name: &'static str,
    /// Determinism class.
    pub class: DeterminismClass,
    /// Unit label.
    pub unit: &'static str,
    /// Emitting stage.
    pub stage: &'static str,
    /// Upper bucket boundaries.
    pub boundaries: &'static [u64],
    /// Per-bucket counts (final entry = overflow bucket).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone)]
pub struct SpanSample {
    /// Full `/`-separated span path.
    pub path: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Total time inside the span, nanoseconds.
    pub total_ns: u64,
    /// Total minus time attributed to child spans, nanoseconds.
    pub self_ns: u64,
}

/// A point-in-time copy of the registry (see
/// [`Registry::snapshot`](crate::Registry::snapshot)); every family is
/// sorted by name/path, events keep sequence order.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Sampled counters, name-sorted.
    pub counters: Vec<CounterSample>,
    /// Sampled gauges, name-sorted.
    pub gauges: Vec<GaugeSample>,
    /// Sampled histograms, name-sorted.
    pub histograms: Vec<HistogramSample>,
    /// Span statistics, path-sorted.
    pub spans: Vec<SpanSample>,
    /// The event log, in sequence order.
    pub events: Vec<String>,
}

/// Escape a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_list(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

impl MetricsSnapshot {
    /// The deterministic subset — [`DeterminismClass::Deterministic`]
    /// counters and gauges plus the event log — rendered as JSON.  This
    /// string is the thread-count-invariance contract: it must be
    /// byte-identical for any `ALIAS_THREADS` over the same campaign.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        let deterministic: Vec<&CounterSample> = self
            .counters
            .iter()
            .filter(|c| c.class == DeterminismClass::Deterministic)
            .collect();
        for (i, counter) in deterministic.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"unit\": \"{}\", \"stage\": \"{}\", \"value\": {}}}",
                counter.name, counter.unit, counter.stage, counter.value
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        let gauges: Vec<&GaugeSample> = self
            .gauges
            .iter()
            .filter(|g| g.class == DeterminismClass::Deterministic)
            .collect();
        for (i, gauge) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"unit\": \"{}\", \"stage\": \"{}\", \"value\": {}}}",
                gauge.name, gauge.unit, gauge.stage, gauge.value
            );
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\"", json_escape(event));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The full snapshot — every class, histograms and span statistics
    /// included — rendered as JSON.  Timing-class values live here and
    /// only here; nothing of this render may flow into experiment
    /// documents.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"class\": \"{}\", \"unit\": \"{}\", \"stage\": \"{}\", \"value\": {}}}",
                c.name,
                c.class.label(),
                c.unit,
                c.stage,
                c.value
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"class\": \"{}\", \"unit\": \"{}\", \"stage\": \"{}\", \"value\": {}}}",
                g.name,
                g.class.label(),
                g.unit,
                g.stage,
                g.value
            );
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"class\": \"{}\", \"unit\": \"{}\", \"stage\": \"{}\", \"boundaries\": ",
                h.name,
                h.class.label(),
                h.unit,
                h.stage
            );
            push_list(&mut out, h.boundaries);
            out.push_str(", \"buckets\": ");
            push_list(&mut out, &h.buckets);
            let _ = write!(out, ", \"count\": {}, \"sum\": {}}}", h.count, h.sum);
        }
        out.push_str("\n  ],\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"path\": \"{}\", \"count\": {}, \"total_ns\": {}, \"self_ns\": {}}}",
                json_escape(&s.path),
                s.count,
                s.total_ns,
                s.self_ns
            );
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\"", json_escape(event));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Prometheus text exposition of counters, gauges, histograms and
    /// span statistics (`alias_` prefix, dots/dashes folded to
    /// underscores).
    pub fn to_prometheus(&self) -> String {
        fn prom_name(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 6);
            out.push_str("alias_");
            for c in name.chars() {
                out.push(if c == '.' || c == '-' { '_' } else { c });
            }
            out
        }
        let mut out = String::new();
        for c in &self.counters {
            let name = prom_name(c.name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(
                out,
                "{name}{{stage=\"{}\",class=\"{}\",unit=\"{}\"}} {}",
                c.stage,
                c.class.label(),
                c.unit,
                c.value
            );
        }
        for g in &self.gauges {
            let name = prom_name(g.name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(
                out,
                "{name}{{stage=\"{}\",class=\"{}\",unit=\"{}\"}} {}",
                g.stage,
                g.class.label(),
                g.unit,
                g.value
            );
        }
        for h in &self.histograms {
            let name = prom_name(h.name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (slot, &count) in h.buckets.iter().enumerate() {
                cumulative += count;
                let le = match h.boundaries.get(slot) {
                    Some(boundary) => boundary.to_string(),
                    None => "+Inf".to_owned(),
                };
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_count {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
        }
        for s in &self.spans {
            let path = &s.path;
            let _ = writeln!(out, "alias_span_count{{path=\"{path}\"}} {}", s.count);
            let _ = writeln!(out, "alias_span_total_ns{{path=\"{path}\"}} {}", s.total_ns);
            let _ = writeln!(out, "alias_span_self_ns{{path=\"{path}\"}} {}", s.self_ns);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                CounterSample {
                    name: "scan.probes_emitted",
                    class: DeterminismClass::Deterministic,
                    unit: "probes",
                    stage: "scan",
                    value: 42,
                },
                CounterSample {
                    name: "exec.shard_map_calls",
                    class: DeterminismClass::Timing,
                    unit: "calls",
                    stage: "exec",
                    value: 7,
                },
            ],
            gauges: vec![GaugeSample {
                name: "exec.shard_imbalance_x1000",
                class: DeterminismClass::Timing,
                unit: "x1000",
                stage: "exec",
                value: 1500,
            }],
            histograms: vec![HistogramSample {
                name: "exec.shard_duration_us",
                class: DeterminismClass::Timing,
                unit: "us",
                stage: "exec",
                boundaries: &[10, 100],
                buckets: vec![1, 2, 3],
                count: 6,
                sum: 999,
            }],
            spans: vec![SpanSample {
                path: "resolve.campaign".to_owned(),
                count: 1,
                total_ns: 1_000,
                self_ns: 400,
            }],
            events: vec!["phase:zmap_v4".to_owned()],
        }
    }

    #[test]
    fn deterministic_json_excludes_timing_metrics() {
        let json = sample().deterministic_json();
        assert!(json.contains("scan.probes_emitted"));
        assert!(!json.contains("exec.shard_map_calls"));
        assert!(!json.contains("shard_imbalance"));
        assert!(!json.contains("total_ns"));
        assert!(json.contains("phase:zmap_v4"));
    }

    #[test]
    fn full_json_carries_every_family() {
        let json = sample().to_json();
        for needle in [
            "scan.probes_emitted",
            "exec.shard_map_calls",
            "exec.shard_imbalance_x1000",
            "exec.shard_duration_us",
            "\"boundaries\": [10,100]",
            "\"buckets\": [1,2,3]",
            "resolve.campaign",
            "\"self_ns\": 400",
            "phase:zmap_v4",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn prometheus_render_is_cumulative_and_prefixed() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE alias_scan_probes_emitted counter"));
        assert!(text.contains(
            "alias_scan_probes_emitted{stage=\"scan\",class=\"deterministic\",unit=\"probes\"} 42"
        ));
        assert!(text.contains("# TYPE alias_exec_shard_imbalance_x1000 gauge"));
        // Histogram buckets are cumulative: 1, 1+2, 1+2+3.
        assert!(text.contains("alias_exec_shard_duration_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("alias_exec_shard_duration_us_bucket{le=\"100\"} 3"));
        assert!(text.contains("alias_exec_shard_duration_us_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("alias_exec_shard_duration_us_count 6"));
        assert!(text.contains("alias_span_self_ns{path=\"resolve.campaign\"} 400"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
