//! # alias-obs
//!
//! The pipeline's observability substrate: a lock-free sharded metrics
//! registry (monotonic [`Counter`]s, [`Gauge`]s and fixed-boundary
//! [`Histogram`]s), lightweight [`span()`] tracing with self/child time
//! attribution, and a sequence-ordered [`event`] log.  Every other crate
//! reports *what the pipeline did* through this one; nothing else in the
//! workspace may read the wall clock (the `det-wallclock` lint enforces
//! it — `Instant::now` is legal only inside this crate).
//!
//! ## Determinism classes
//!
//! The repo's load-bearing property is a byte-identical
//! `EXPERIMENTS_MEASURED.md` at any `ALIAS_THREADS`, and the metrics
//! layer honours the same split:
//!
//! * [`DeterminismClass::Deterministic`] — values that are a pure
//!   function of the campaign inputs (probe counts, absorbed rows,
//!   candidate pairs, merged sets).  Counter stripes are merged by
//!   commutative summation, so a total emitted from inside shard workers
//!   is still thread-count-invariant as long as each item contributes
//!   the same amount regardless of which shard processed it.
//!   [`MetricsSnapshot::deterministic_json`] renders exactly this subset
//!   and must be byte-identical across thread counts.
//! * [`DeterminismClass::Timing`] — wall-clock durations, shard
//!   imbalance, scratch-pool hit rates, raw union-find op counts:
//!   anything that depends on the shard decomposition
//!   (`alias_exec::shards_for` derives shard counts from the *hardware*
//!   parallelism) or on scheduling.  These render only in the full
//!   [`MetricsSnapshot::to_json`] / [`MetricsSnapshot::to_prometheus`]
//!   output, never in rendered experiment documents.
//!
//! ## Hot-path discipline
//!
//! Counters are striped over per-thread atomic slots: `add` is one
//! relaxed `fetch_add` on the calling thread's stripe, and `value` merges
//! the stripes in stripe order.  Call sites hoist a handle through the
//! `static` [`LazyCounter`]/[`LazyGauge`]/[`LazyHistogram`] wrappers so
//! the registry lock is touched once per metric per process, not per
//! observation.
//!
//! ## Spans and events
//!
//! [`span()`] (or the [`span!`] macro, which formats a path) returns a
//! [`SpanGuard`]; guards nest through a thread-local stack, so a span's
//! *self* time is its total minus the time attributed to its children.
//! [`SpanGuard::finish`] hands the measured [`Duration`](std::time::Duration) back to the
//! caller — which is how `alias-resolve` derives its public
//! `StageTimings` without touching `Instant` itself.  [`event`] appends
//! a label to a global sequence-ordered log: it records *order*, not
//! time, so events emitted from serial orchestration points (campaign
//! phase boundaries) are part of the deterministic subset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metric;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use metric::{
    Counter, DeterminismClass, Gauge, Histogram, LazyCounter, LazyGauge, LazyHistogram, MetricDesc,
};
pub use registry::{event, registry, Registry};
pub use snapshot::{
    CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, SpanSample,
    DURATION_US_BOUNDARIES,
};
pub use span::{span, span_owned, SpanGuard, Stopwatch};

/// Format a span path and enter it: `span!("scan.zmap")` or
/// `span!("merge.shard{}", shard)`.
#[macro_export]
macro_rules! span {
    ($path:literal) => {
        $crate::span($path)
    };
    ($($arg:tt)*) => {
        $crate::span_owned(format!($($arg)*))
    };
}
