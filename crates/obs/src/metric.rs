//! Metric primitives: striped counters, gauges, fixed-boundary
//! histograms, and the lazy `static` handles hot loops hoist.

use crate::registry::registry;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of atomic stripes per counter.  A power of two comfortably
/// above the worker-pool cap, so concurrent shard workers rarely share a
/// stripe.
const STRIPES: usize = 32;

/// Stripe assignment: each thread picks one stripe round-robin on first
/// touch and keeps it for its lifetime.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// Whether a metric's value is part of the thread-count-invariant
/// contract (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeterminismClass {
    /// A pure function of the campaign inputs: byte-identical at any
    /// `ALIAS_THREADS`, rendered by
    /// [`MetricsSnapshot::deterministic_json`](crate::MetricsSnapshot::deterministic_json).
    Deterministic,
    /// Depends on scheduling, the shard decomposition or the wall clock:
    /// out-of-band of all rendered experiment output.
    Timing,
}

impl DeterminismClass {
    /// The class's lowercase label, as rendered in snapshots.
    pub fn label(self) -> &'static str {
        match self {
            DeterminismClass::Deterministic => "deterministic",
            DeterminismClass::Timing => "timing",
        }
    }
}

/// The static description a metric is registered under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDesc {
    /// Dot-separated metric name, e.g. `scan.probes_emitted`.
    pub name: &'static str,
    /// Determinism class (see the crate docs).
    pub class: DeterminismClass,
    /// Unit label, e.g. `probes`, `rows`, `ns`, `x1000`.
    pub unit: &'static str,
    /// The pipeline stage that emits it: `exec`, `scan`, `store`,
    /// `merge`, `resolve` or `bench`.
    pub stage: &'static str,
}

impl MetricDesc {
    /// A descriptor from its four fields (`const`, so `static` handles
    /// can embed it).
    pub const fn new(
        name: &'static str,
        class: DeterminismClass,
        unit: &'static str,
        stage: &'static str,
    ) -> Self {
        MetricDesc {
            name,
            class,
            unit,
            stage,
        }
    }
}

/// A monotonic counter striped over per-thread atomic slots.
///
/// `add` is one relaxed `fetch_add` on the calling thread's stripe;
/// `value` merges the stripes in stripe order.  Summation is commutative,
/// so totals accumulated from inside shard workers are still
/// thread-count-invariant whenever each work item contributes the same
/// amount no matter which shard processed it.
#[derive(Debug)]
pub struct Counter {
    stripes: [AtomicU64; STRIPES],
}

impl Counter {
    pub(crate) fn new() -> Self {
        Counter {
            stripes: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total: the stripes merged in stripe order.
    pub fn value(&self) -> u64 {
        self.stripes.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    pub(crate) fn reset(&self) {
        for stripe in &self.stripes {
            stripe.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-value / running-max gauge.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    pub(crate) fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (running maximum).
    #[inline]
    pub fn max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A histogram over fixed, registration-time bucket boundaries.
///
/// `observe(v)` increments the first bucket whose upper boundary is
/// `>= v` (the last bucket is the overflow bucket), plus a striped
/// count/sum pair — every per-bucket cell is a striped [`Counter`], so
/// concurrent shard workers do not contend.
#[derive(Debug)]
pub struct Histogram {
    boundaries: &'static [u64],
    buckets: Vec<Counter>,
    count: Counter,
    sum: Counter,
}

impl Histogram {
    pub(crate) fn new(boundaries: &'static [u64]) -> Self {
        debug_assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly increasing"
        );
        Histogram {
            boundaries,
            buckets: (0..=boundaries.len()).map(|_| Counter::new()).collect(),
            count: Counter::new(),
            sum: Counter::new(),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let slot = self
            .boundaries
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.boundaries.len());
        self.buckets[slot].incr();
        self.count.incr();
        self.sum.add(v);
    }

    /// The bucket boundaries the histogram was registered with.
    pub fn boundaries(&self) -> &'static [u64] {
        self.boundaries
    }

    /// Per-bucket counts, in boundary order (the final entry is the
    /// overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(Counter::value).collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.value()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.value()
    }

    pub(crate) fn reset(&self) {
        for bucket in &self.buckets {
            bucket.reset();
        }
        self.count.reset();
        self.sum.reset();
    }
}

/// A `static`-friendly counter handle: resolves its registry entry once,
/// then every `add` is a plain striped `fetch_add`.
///
/// ```
/// use alias_obs::{DeterminismClass, LazyCounter};
/// static ROWS: LazyCounter = LazyCounter::new(
///     "doc.rows_seen",
///     DeterminismClass::Deterministic,
///     "rows",
///     "store",
/// );
/// ROWS.add(3);
/// assert!(ROWS.value() >= 3);
/// ```
pub struct LazyCounter {
    desc: MetricDesc,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// A handle for the counter described by the four descriptor fields.
    pub const fn new(
        name: &'static str,
        class: DeterminismClass,
        unit: &'static str,
        stage: &'static str,
    ) -> Self {
        LazyCounter {
            desc: MetricDesc::new(name, class, unit, stage),
            cell: OnceLock::new(),
        }
    }

    /// The registered counter (registering it on first touch).
    pub fn get(&self) -> &'static Counter {
        self.cell.get_or_init(|| registry().counter(self.desc))
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.get().incr();
    }

    /// The current total.
    pub fn value(&self) -> u64 {
        self.get().value()
    }
}

/// A `static`-friendly gauge handle (see [`LazyCounter`]).
pub struct LazyGauge {
    desc: MetricDesc,
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    /// A handle for the gauge described by the four descriptor fields.
    pub const fn new(
        name: &'static str,
        class: DeterminismClass,
        unit: &'static str,
        stage: &'static str,
    ) -> Self {
        LazyGauge {
            desc: MetricDesc::new(name, class, unit, stage),
            cell: OnceLock::new(),
        }
    }

    /// The registered gauge (registering it on first touch).
    pub fn get(&self) -> &'static Gauge {
        self.cell.get_or_init(|| registry().gauge(self.desc))
    }

    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.get().set(v);
    }

    /// Raise the gauge to `v` if larger.
    #[inline]
    pub fn max(&self, v: u64) {
        self.get().max(v);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.get().value()
    }
}

/// A `static`-friendly histogram handle (see [`LazyCounter`]).
pub struct LazyHistogram {
    desc: MetricDesc,
    boundaries: &'static [u64],
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// A handle for the histogram described by the descriptor fields and
    /// its fixed bucket boundaries.
    pub const fn new(
        name: &'static str,
        class: DeterminismClass,
        unit: &'static str,
        stage: &'static str,
        boundaries: &'static [u64],
    ) -> Self {
        LazyHistogram {
            desc: MetricDesc::new(name, class, unit, stage),
            boundaries,
            cell: OnceLock::new(),
        }
    }

    /// The registered histogram (registering it on first touch).
    pub fn get(&self) -> &'static Histogram {
        self.cell
            .get_or_init(|| registry().histogram(self.desc, self.boundaries))
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.get().observe(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let counter = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1_000 {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 8_000);
        counter.reset();
        assert_eq!(counter.value(), 0);
    }

    #[test]
    fn gauge_set_and_max() {
        let gauge = Gauge::new();
        gauge.set(5);
        gauge.max(3);
        assert_eq!(gauge.value(), 5);
        gauge.max(9);
        assert_eq!(gauge.value(), 9);
        gauge.reset();
        assert_eq!(gauge.value(), 0);
    }

    #[test]
    fn histogram_buckets_observations() {
        static BOUNDS: [u64; 3] = [10, 100, 1_000];
        let histogram = Histogram::new(&BOUNDS);
        for v in [1, 10, 11, 500, 5_000] {
            histogram.observe(v);
        }
        assert_eq!(histogram.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(histogram.count(), 5);
        assert_eq!(histogram.sum(), 1 + 10 + 11 + 500 + 5_000);
        histogram.reset();
        assert_eq!(histogram.count(), 0);
        assert_eq!(histogram.bucket_counts(), vec![0, 0, 0, 0]);
    }
}
