//! The global metric registry, span-stats store and event log.

use crate::metric::{Counter, Gauge, Histogram, MetricDesc};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, SpanSample};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Append `label` to the sequence-ordered event log.
///
/// The log records *order*, not time; call it only from serial
/// orchestration points (campaign phase boundaries, stage hand-offs) so
/// the sequence stays part of the deterministic subset.
pub fn event(label: impl Into<String>) {
    registry().push_event(label.into());
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpanStats {
    pub count: u64,
    pub total_ns: u64,
    pub child_ns: u64,
}

/// One registered metric: its descriptor plus the live instrument.
struct Registered<T: 'static> {
    desc: MetricDesc,
    instrument: &'static T,
}

/// The metric registry: name-keyed `BTreeMap`s (deterministic iteration
/// order) guarded by plain mutexes.  The mutexes are touched only at
/// registration, reset and snapshot time — the hot path goes through
/// `&'static` instrument handles and never takes a lock.
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Registered<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Registered<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Registered<Histogram>>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
    events: Mutex<Vec<String>>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The counter registered under `desc.name`, registering it on first
    /// use.  The first registration's descriptor wins; re-registering
    /// the same name with a different descriptor is a bug
    /// (`debug_assert`ed).
    pub fn counter(&self, desc: MetricDesc) -> &'static Counter {
        let mut counters = self.counters.lock().expect("counter registry poisoned");
        let entry = counters.entry(desc.name).or_insert_with(|| Registered {
            desc,
            instrument: Box::leak(Box::new(Counter::new())),
        });
        debug_assert_eq!(
            entry.desc, desc,
            "metric re-registered with a new descriptor"
        );
        entry.instrument
    }

    /// The gauge registered under `desc.name` (see [`Self::counter`]).
    pub fn gauge(&self, desc: MetricDesc) -> &'static Gauge {
        let mut gauges = self.gauges.lock().expect("gauge registry poisoned");
        let entry = gauges.entry(desc.name).or_insert_with(|| Registered {
            desc,
            instrument: Box::leak(Box::new(Gauge::new())),
        });
        debug_assert_eq!(
            entry.desc, desc,
            "metric re-registered with a new descriptor"
        );
        entry.instrument
    }

    /// The histogram registered under `desc.name` (see
    /// [`Self::counter`]); `boundaries` apply only at first
    /// registration.
    pub fn histogram(&self, desc: MetricDesc, boundaries: &'static [u64]) -> &'static Histogram {
        let mut histograms = self.histograms.lock().expect("histogram registry poisoned");
        let entry = histograms.entry(desc.name).or_insert_with(|| Registered {
            desc,
            instrument: Box::leak(Box::new(Histogram::new(boundaries))),
        });
        debug_assert_eq!(
            entry.desc, desc,
            "metric re-registered with a new descriptor"
        );
        entry.instrument
    }

    pub(crate) fn record_span(&self, path: &str, elapsed_ns: u64, child_ns: u64) {
        let mut spans = self.spans.lock().expect("span registry poisoned");
        let stats = match spans.get_mut(path) {
            Some(stats) => stats,
            None => spans.entry(path.to_owned()).or_default(),
        };
        stats.count += 1;
        stats.total_ns += elapsed_ns;
        stats.child_ns += child_ns;
    }

    fn push_event(&self, label: String) {
        self.events.lock().expect("event log poisoned").push(label);
    }

    /// Zero every registered instrument and clear the span stats and the
    /// event log.  Descriptors stay registered — `&'static` handles held
    /// by hot loops remain valid.  Call at run boundaries (the bench
    /// harness resets before each measured configuration).
    pub fn reset(&self) {
        for entry in self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .values()
        {
            entry.instrument.reset();
        }
        for entry in self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .values()
        {
            entry.instrument.reset();
        }
        for entry in self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .values()
        {
            entry.instrument.reset();
        }
        self.spans.lock().expect("span registry poisoned").clear();
        self.events.lock().expect("event log poisoned").clear();
    }

    /// A point-in-time copy of every registered metric, span path and
    /// event, each family sorted by name/path (sequence order for
    /// events).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .values()
            .map(|entry| CounterSample {
                name: entry.desc.name,
                class: entry.desc.class,
                unit: entry.desc.unit,
                stage: entry.desc.stage,
                value: entry.instrument.value(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .values()
            .map(|entry| GaugeSample {
                name: entry.desc.name,
                class: entry.desc.class,
                unit: entry.desc.unit,
                stage: entry.desc.stage,
                value: entry.instrument.value(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .values()
            .map(|entry| HistogramSample {
                name: entry.desc.name,
                class: entry.desc.class,
                unit: entry.desc.unit,
                stage: entry.desc.stage,
                boundaries: entry.instrument.boundaries(),
                buckets: entry.instrument.bucket_counts(),
                count: entry.instrument.count(),
                sum: entry.instrument.sum(),
            })
            .collect();
        let spans = self
            .spans
            .lock()
            .expect("span registry poisoned")
            .iter()
            .map(|(path, stats)| SpanSample {
                path: path.clone(),
                count: stats.count,
                total_ns: stats.total_ns,
                self_ns: stats.total_ns.saturating_sub(stats.child_ns),
            })
            .collect();
        let events = self.events.lock().expect("event log poisoned").clone();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            spans,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::DeterminismClass;

    #[test]
    fn registration_is_idempotent_and_snapshot_sorted() {
        let desc = MetricDesc::new(
            "test.registry.alpha",
            DeterminismClass::Deterministic,
            "items",
            "test",
        );
        let first = registry().counter(desc);
        let second = registry().counter(desc);
        assert!(std::ptr::eq(first, second));
        first.add(2);
        let beta = registry().counter(MetricDesc::new(
            "test.registry.beta",
            DeterminismClass::Timing,
            "items",
            "test",
        ));
        beta.incr();
        let snapshot = registry().snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|c| c.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert!(snapshot
            .counters
            .iter()
            .any(|c| c.name == "test.registry.alpha" && c.value >= 2));
    }

    #[test]
    fn events_keep_sequence_order() {
        // The registry is global and tests run concurrently, so assert
        // on relative order of this test's own events only.
        event("test.order.first");
        event("test.order.second");
        let snapshot = registry().snapshot();
        let first = snapshot.events.iter().position(|e| e == "test.order.first");
        let second = snapshot
            .events
            .iter()
            .position(|e| e == "test.order.second");
        // Another test may have reset the registry between the two pushes
        // and the snapshot; order is only asserted when both survived.
        if let (Some(a), Some(b)) = (first, second) {
            assert!(a < b);
        }
    }
}
