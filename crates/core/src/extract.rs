//! Turning scan observations into protocol identifiers.

use crate::identifier::{
    BgpIdentifier, BgpIdentifierPolicy, ProtocolIdentifier, Snmpv3Identifier, SshIdentifier,
    SshIdentifierPolicy,
};
use alias_scan::{ServiceObservation, ServicePayload};
use serde::{Deserialize, Serialize};

/// Identifier policies for all protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExtractionConfig {
    /// SSH identifier policy.
    pub ssh: SshIdentifierPolicy,
    /// BGP identifier policy.
    pub bgp: BgpIdentifierPolicy,
}

impl ExtractionConfig {
    /// The paper's configuration: full identifiers for both protocols.
    pub fn paper() -> Self {
        ExtractionConfig {
            ssh: SshIdentifierPolicy::Full,
            bgp: BgpIdentifierPolicy::FullOpen,
        }
    }
}

/// Extracts [`ProtocolIdentifier`]s from observations.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentifierExtractor {
    config: ExtractionConfig,
}

impl IdentifierExtractor {
    /// Create an extractor with the given policies.
    pub fn new(config: ExtractionConfig) -> Self {
        IdentifierExtractor { config }
    }

    /// The active configuration.
    pub fn config(&self) -> ExtractionConfig {
        self.config
    }

    /// Extract the identifier for one observation, or `None` when the
    /// observation does not carry enough material (e.g. an SSH session that
    /// never reached the host key).
    pub fn extract(&self, observation: &ServiceObservation) -> Option<ProtocolIdentifier> {
        self.extract_payload(&observation.payload)
    }

    /// Extract the identifier from a payload alone — the identifier is a
    /// pure function of the application-layer material, so consumers that
    /// read columnar storage can hand over a borrowed payload without
    /// materialising the observation row around it.
    pub fn extract_payload(&self, payload: &ServicePayload) -> Option<ProtocolIdentifier> {
        match payload {
            ServicePayload::Ssh(ssh) => {
                SshIdentifier::from_observation(ssh, self.config.ssh).map(ProtocolIdentifier::Ssh)
            }
            ServicePayload::Bgp { open, .. } => Some(ProtocolIdentifier::Bgp(
                BgpIdentifier::from_open(open, self.config.bgp),
            )),
            ServicePayload::Snmpv3 { engine_id, .. } => Some(ProtocolIdentifier::Snmpv3(
                Snmpv3Identifier::from_engine_id(engine_id),
            )),
            // Rate-limiting loss counts are correlated, not extracted:
            // the payload carries no device-wide identifier.
            ServicePayload::RateLimit { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::SimTime;
    use alias_scan::DataSource;
    use alias_wire::bgp::OpenMessage;
    use alias_wire::snmp::EngineId;
    use alias_wire::ssh::{Banner, HostKey, HostKeyAlgorithm, KexInit, SshObservation};
    use std::net::{IpAddr, Ipv4Addr};

    fn observation(payload: ServicePayload) -> ServiceObservation {
        ServiceObservation {
            addr: IpAddr::V4(Ipv4Addr::new(192, 0, 2, 10)),
            port: 22,
            source: DataSource::Active,
            timestamp: SimTime::ZERO,
            asn: Some(64_500),
            payload,
        }
    }

    #[test]
    fn extracts_all_three_protocols() {
        let extractor = IdentifierExtractor::new(ExtractionConfig::paper());
        let ssh = observation(ServicePayload::Ssh(SshObservation {
            banner: Banner::new("OpenSSH_9.2p1", None).unwrap(),
            kex_init: Some(KexInit::typical_openssh()),
            host_key: Some(HostKey::new(HostKeyAlgorithm::Ed25519, vec![5; 32])),
        }));
        let bgp = observation(ServicePayload::Bgp {
            open: OpenMessage {
                version: 4,
                my_as: 64_500,
                hold_time: 90,
                bgp_identifier: Ipv4Addr::new(10, 0, 0, 1),
                optional_parameters: vec![],
            },
            notification_seen: true,
        });
        let snmp = observation(ServicePayload::Snmpv3 {
            engine_id: EngineId::from_enterprise_mac(9, [0, 1, 2, 3, 4, 5]),
            engine_boots: 3,
            engine_time: 100,
        });
        assert_eq!(extractor.extract(&ssh).unwrap().protocol_name(), "ssh");
        assert_eq!(extractor.extract(&bgp).unwrap().protocol_name(), "bgp");
        assert_eq!(extractor.extract(&snmp).unwrap().protocol_name(), "snmpv3");
    }

    #[test]
    fn ssh_without_host_key_yields_no_identifier() {
        let extractor = IdentifierExtractor::default();
        let obs = observation(ServicePayload::Ssh(SshObservation {
            banner: Banner::new("OpenSSH_9.2p1", None).unwrap(),
            kex_init: Some(KexInit::typical_openssh()),
            host_key: None,
        }));
        assert!(extractor.extract(&obs).is_none());
    }

    #[test]
    fn default_config_is_the_paper_config() {
        assert_eq!(ExtractionConfig::default(), ExtractionConfig::paper());
    }
}
