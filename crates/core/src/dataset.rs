//! Dataset overview statistics (the paper's Table 1).

use alias_scan::{DataSource, ObservationStore, ServiceObservation, ServiceProtocol};
use alias_store::{ProtocolTag, SourceTag};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::IpAddr;

/// Distinct-IP and distinct-AS counts for one slice of the data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Distinct responsive addresses.
    pub ips: usize,
    /// Distinct origin ASes.
    pub asns: usize,
}

/// Filter describing one Table 1 cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetFilter {
    /// Restrict to one protocol (`None` = all protocols, i.e. the union row).
    pub protocol: Option<ServiceProtocol>,
    /// Restrict to one data source (`None` = union of sources).
    pub source: Option<DataSource>,
    /// Restrict to IPv6 (`true`) or IPv4 (`false`).
    pub ipv6: bool,
}

impl DatasetSummary {
    /// Compute the summary of all observations matching `filter`.
    pub fn compute<'a, I>(observations: I, filter: DatasetFilter) -> Self
    where
        I: IntoIterator<Item = &'a ServiceObservation>,
    {
        // Collect-then-dedup instead of a tree set: distinctness is the
        // only thing needed, and the sort happens once at the end.
        let mut ips: Vec<IpAddr> = Vec::new();
        let mut asns: BTreeSet<u32> = BTreeSet::new();
        for obs in observations {
            if obs.is_ipv6() != filter.ipv6 {
                continue;
            }
            if let Some(protocol) = filter.protocol {
                if obs.protocol() != protocol {
                    continue;
                }
            }
            if let Some(source) = filter.source {
                if obs.source != source {
                    continue;
                }
            }
            ips.push(obs.addr);
            if let Some(asn) = obs.asn {
                asns.insert(asn);
            }
        }
        ips.sort_unstable();
        ips.dedup();
        DatasetSummary {
            ips: ips.len(),
            asns: asns.len(),
        }
    }

    /// Compute the summary straight from a columnar store.
    ///
    /// Equivalent to [`Self::compute`] over the store's rows, but the
    /// filter pass reads only the one-byte tag columns plus the id column —
    /// payloads are never touched, and distinct-IP counting is a bitmap
    /// probe over the dense id space instead of a `BTreeSet` insert.
    pub fn from_store(store: &ObservationStore, filter: DatasetFilter) -> Self {
        let protocol = filter.protocol.map(ProtocolTag::from);
        let source = filter.source.map(SourceTag::from);
        let interner = store.interner();
        // Per-id membership flags instead of BTreeSets: the id space is
        // dense, so distinctness is two bitmap probes per matching row.
        let mut ip_seen = vec![false; interner.len()];
        let mut ips = 0usize;
        let mut asns: BTreeSet<u32> = BTreeSet::new();
        let protocols = store.protocols();
        let sources = store.sources();
        let addrs = store.addr_ids();
        let store_asns = store.asns();
        for row in 0..store.len() {
            if protocol.is_some_and(|p| protocols[row] != p)
                || source.is_some_and(|s| sources[row] != s)
            {
                continue;
            }
            let id = addrs[row];
            if interner.addr(id).is_ipv6() != filter.ipv6 {
                continue;
            }
            if !std::mem::replace(&mut ip_seen[id.index()], true) {
                ips += 1;
            }
            if let Some(asn) = store_asns[row] {
                asns.insert(asn);
            }
        }
        DatasetSummary {
            ips,
            asns: asns.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::SimTime;
    use alias_scan::ServicePayload;
    use alias_wire::snmp::EngineId;

    fn snmp_obs(addr: &str, asn: u32, source: DataSource) -> ServiceObservation {
        ServiceObservation {
            addr: addr.parse().unwrap(),
            port: 161,
            source,
            timestamp: SimTime::ZERO,
            asn: Some(asn),
            payload: ServicePayload::Snmpv3 {
                engine_id: EngineId::from_enterprise_mac(9, [0; 6]),
                engine_boots: 1,
                engine_time: 1,
            },
        }
    }

    #[test]
    fn filters_by_protocol_source_and_family() {
        let observations = [
            snmp_obs("10.0.0.1", 100, DataSource::Active),
            snmp_obs("10.0.0.2", 100, DataSource::Active),
            snmp_obs("10.0.0.2", 100, DataSource::Censys), // same IP, other source
            snmp_obs("2001:db8::1", 200, DataSource::Active),
        ];
        let v4_active = DatasetSummary::compute(
            observations.iter(),
            DatasetFilter {
                protocol: Some(ServiceProtocol::Snmpv3),
                source: Some(DataSource::Active),
                ipv6: false,
            },
        );
        assert_eq!(v4_active, DatasetSummary { ips: 2, asns: 1 });

        let v4_union_sources = DatasetSummary::compute(
            observations.iter(),
            DatasetFilter {
                protocol: Some(ServiceProtocol::Snmpv3),
                source: None,
                ipv6: false,
            },
        );
        assert_eq!(
            v4_union_sources.ips, 2,
            "union must not double count the shared IP"
        );

        let v6 = DatasetSummary::compute(
            observations.iter(),
            DatasetFilter {
                protocol: None,
                source: None,
                ipv6: true,
            },
        );
        assert_eq!(v6, DatasetSummary { ips: 1, asns: 1 });

        let ssh_only = DatasetSummary::compute(
            observations.iter(),
            DatasetFilter {
                protocol: Some(ServiceProtocol::Ssh),
                source: None,
                ipv6: false,
            },
        );
        assert_eq!(ssh_only, DatasetSummary::default());
    }

    #[test]
    fn store_summary_matches_the_row_iterator_for_every_filter() {
        let observations = [
            snmp_obs("10.0.0.1", 100, DataSource::Active),
            snmp_obs("10.0.0.2", 100, DataSource::Active),
            snmp_obs("10.0.0.2", 100, DataSource::Censys),
            snmp_obs("2001:db8::1", 200, DataSource::Active),
        ];
        let store = alias_scan::ObservationStore::from_observations(observations.to_vec());
        for protocol in [
            None,
            Some(ServiceProtocol::Snmpv3),
            Some(ServiceProtocol::Ssh),
        ] {
            for source in [None, Some(DataSource::Active), Some(DataSource::Censys)] {
                for ipv6 in [false, true] {
                    let filter = DatasetFilter {
                        protocol,
                        source,
                        ipv6,
                    };
                    assert_eq!(
                        DatasetSummary::from_store(&store, filter),
                        DatasetSummary::compute(observations.iter(), filter),
                        "{filter:?}"
                    );
                }
            }
        }
    }
}
