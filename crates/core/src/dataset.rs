//! Dataset overview statistics (the paper's Table 1).

use alias_scan::{DataSource, ServiceObservation, ServiceProtocol};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::IpAddr;

/// Distinct-IP and distinct-AS counts for one slice of the data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Distinct responsive addresses.
    pub ips: usize,
    /// Distinct origin ASes.
    pub asns: usize,
}

/// Filter describing one Table 1 cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetFilter {
    /// Restrict to one protocol (`None` = all protocols, i.e. the union row).
    pub protocol: Option<ServiceProtocol>,
    /// Restrict to one data source (`None` = union of sources).
    pub source: Option<DataSource>,
    /// Restrict to IPv6 (`true`) or IPv4 (`false`).
    pub ipv6: bool,
}

impl DatasetSummary {
    /// Compute the summary of all observations matching `filter`.
    pub fn compute<'a, I>(observations: I, filter: DatasetFilter) -> Self
    where
        I: IntoIterator<Item = &'a ServiceObservation>,
    {
        let mut ips: BTreeSet<IpAddr> = BTreeSet::new();
        let mut asns: BTreeSet<u32> = BTreeSet::new();
        for obs in observations {
            if obs.is_ipv6() != filter.ipv6 {
                continue;
            }
            if let Some(protocol) = filter.protocol {
                if obs.protocol() != protocol {
                    continue;
                }
            }
            if let Some(source) = filter.source {
                if obs.source != source {
                    continue;
                }
            }
            ips.insert(obs.addr);
            if let Some(asn) = obs.asn {
                asns.insert(asn);
            }
        }
        DatasetSummary {
            ips: ips.len(),
            asns: asns.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_netsim::SimTime;
    use alias_scan::ServicePayload;
    use alias_wire::snmp::EngineId;

    fn snmp_obs(addr: &str, asn: u32, source: DataSource) -> ServiceObservation {
        ServiceObservation {
            addr: addr.parse().unwrap(),
            port: 161,
            source,
            timestamp: SimTime::ZERO,
            asn: Some(asn),
            payload: ServicePayload::Snmpv3 {
                engine_id: EngineId::from_enterprise_mac(9, [0; 6]),
                engine_boots: 1,
                engine_time: 1,
            },
        }
    }

    #[test]
    fn filters_by_protocol_source_and_family() {
        let observations = [
            snmp_obs("10.0.0.1", 100, DataSource::Active),
            snmp_obs("10.0.0.2", 100, DataSource::Active),
            snmp_obs("10.0.0.2", 100, DataSource::Censys), // same IP, other source
            snmp_obs("2001:db8::1", 200, DataSource::Active),
        ];
        let v4_active = DatasetSummary::compute(
            observations.iter(),
            DatasetFilter {
                protocol: Some(ServiceProtocol::Snmpv3),
                source: Some(DataSource::Active),
                ipv6: false,
            },
        );
        assert_eq!(v4_active, DatasetSummary { ips: 2, asns: 1 });

        let v4_union_sources = DatasetSummary::compute(
            observations.iter(),
            DatasetFilter {
                protocol: Some(ServiceProtocol::Snmpv3),
                source: None,
                ipv6: false,
            },
        );
        assert_eq!(
            v4_union_sources.ips, 2,
            "union must not double count the shared IP"
        );

        let v6 = DatasetSummary::compute(
            observations.iter(),
            DatasetFilter {
                protocol: None,
                source: None,
                ipv6: true,
            },
        );
        assert_eq!(v6, DatasetSummary { ips: 1, asns: 1 });

        let ssh_only = DatasetSummary::compute(
            observations.iter(),
            DatasetFilter {
                protocol: Some(ServiceProtocol::Ssh),
                source: None,
                ipv6: false,
            },
        );
        assert_eq!(ssh_only, DatasetSummary::default());
    }
}
