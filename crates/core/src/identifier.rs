//! Protocol identifiers: the values that make two addresses aliases.
//!
//! The paper's key observation is that SSH and BGP volunteer, to anyone who
//! completes a TCP handshake, a set of values that together identify the
//! underlying device:
//!
//! * **SSH** — the identification banner, the algorithm-preference lists of
//!   `SSH_MSG_KEXINIT` (RFC 4253 mandates preference order, so they
//!   fingerprint implementation + configuration) and the server host key.
//!   The host key alone is *almost* unique; combining it with the
//!   capabilities guards against factory-default keys and administrators
//!   cloning keys across distinct devices.
//! * **BGP** — every field of the unsolicited OPEN message (version, My AS,
//!   hold time, BGP Identifier, optional capabilities, message length) is
//!   host-wide configuration; the BGP Identifier in particular must be
//!   identical on every interface of the speaker.
//! * **SNMPv3** — the authoritative engine ID (the prior technique the
//!   paper extends).
//!
//! Identifier *policies* expose the ablations discussed in the paper
//! (key-only vs. combined SSH identifiers, BGP-identifier-only vs. the full
//! OPEN tuple).

use alias_wire::bgp::{OpenMessage, OptionalParameter};
use alias_wire::snmp::EngineId;
use alias_wire::ssh::SshObservation;
use serde::{Deserialize, Serialize};

/// How much of the SSH material to include in the identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SshIdentifierPolicy {
    /// Host key only (what a naive approach would use).
    KeyOnly,
    /// Host key + capability fingerprint (no banner).
    KeyAndCapabilities,
    /// Banner + capability fingerprint + host key — the paper's identifier.
    #[default]
    Full,
}

/// How much of the BGP OPEN message to include in the identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BgpIdentifierPolicy {
    /// The 4-octet BGP Identifier alone.
    IdentifierOnly,
    /// Every host-wide OPEN field (the paper's identifier).
    #[default]
    FullOpen,
}

/// The SSH identifier of one responsive address.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SshIdentifier {
    /// The banner line (software + comments), empty under `KeyOnly`.
    pub banner: String,
    /// The capability fingerprint, empty under `KeyOnly`.
    pub capabilities: String,
    /// The host-key fingerprint.
    pub host_key: String,
}

impl SshIdentifier {
    /// Build the identifier from a parsed SSH observation under `policy`.
    ///
    /// Returns `None` when the observation lacks the host key (the scan did
    /// not get far enough to identify the device).
    pub fn from_observation(obs: &SshObservation, policy: SshIdentifierPolicy) -> Option<Self> {
        let host_key = obs.host_key.as_ref()?.fingerprint();
        let capabilities = match policy {
            SshIdentifierPolicy::KeyOnly => String::new(),
            _ => obs
                .kex_init
                .as_ref()
                .map(|k| k.capability_fingerprint())
                .unwrap_or_default(),
        };
        let banner = match policy {
            SshIdentifierPolicy::Full => obs.banner.to_line(),
            _ => String::new(),
        };
        Some(SshIdentifier {
            banner,
            capabilities,
            host_key,
        })
    }
}

/// The BGP identifier of one responsive address.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BgpIdentifier {
    /// The 4-octet BGP Identifier, rendered dotted-quad.
    pub bgp_identifier: String,
    /// The ASN from the OPEN message (four-octet capability preferred);
    /// zero under `IdentifierOnly`.
    pub asn: u32,
    /// Hold time; zero under `IdentifierOnly`.
    pub hold_time: u16,
    /// Protocol version; zero under `IdentifierOnly`.
    pub version: u8,
    /// OPEN message wire length; zero under `IdentifierOnly`.
    pub open_length: u16,
    /// Canonical rendering of the advertised capabilities, empty under
    /// `IdentifierOnly`.
    pub capabilities: String,
}

impl BgpIdentifier {
    /// Build the identifier from an OPEN message under `policy`.
    pub fn from_open(open: &OpenMessage, policy: BgpIdentifierPolicy) -> Self {
        match policy {
            BgpIdentifierPolicy::IdentifierOnly => BgpIdentifier {
                bgp_identifier: open.bgp_identifier.to_string(),
                asn: 0,
                hold_time: 0,
                version: 0,
                open_length: 0,
                capabilities: String::new(),
            },
            BgpIdentifierPolicy::FullOpen => BgpIdentifier {
                bgp_identifier: open.bgp_identifier.to_string(),
                asn: open.effective_asn(),
                hold_time: open.hold_time,
                version: open.version,
                open_length: open.wire_length(),
                capabilities: render_capabilities(&open.optional_parameters),
            },
        }
    }
}

fn render_capabilities(params: &[OptionalParameter]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (index, param) in params.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        match param {
            OptionalParameter::Capability(cap) => {
                write!(out, "{}:", cap.code()).expect("write to String");
                crate::hex::push_hex(&mut out, &cap.value_bytes());
            }
            OptionalParameter::Other { param_type, value } => {
                write!(out, "p{param_type}:").expect("write to String");
                crate::hex::push_hex(&mut out, value);
            }
        }
    }
    out
}

/// The SNMPv3 identifier: the authoritative engine ID.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Snmpv3Identifier {
    /// Hex rendering of the engine ID.
    pub engine_id: String,
}

impl Snmpv3Identifier {
    /// Build the identifier from an engine ID.
    pub fn from_engine_id(engine_id: &EngineId) -> Self {
        Snmpv3Identifier {
            engine_id: engine_id.to_hex(),
        }
    }
}

/// A protocol identifier of any of the three protocols.
///
/// Identifiers from different protocols never compare equal, even if their
/// textual material coincides: grouping is always per protocol, and only the
/// union analysis (via shared addresses) links protocols together.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolIdentifier {
    /// An SSH identifier.
    Ssh(SshIdentifier),
    /// A BGP identifier.
    Bgp(BgpIdentifier),
    /// An SNMPv3 identifier.
    Snmpv3(Snmpv3Identifier),
}

impl ProtocolIdentifier {
    /// The protocol this identifier belongs to.
    pub fn protocol_name(&self) -> &'static str {
        match self {
            ProtocolIdentifier::Ssh(_) => "ssh",
            ProtocolIdentifier::Bgp(_) => "bgp",
            ProtocolIdentifier::Snmpv3(_) => "snmpv3",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alias_wire::bgp::Capability;
    use alias_wire::ssh::{Banner, HostKey, HostKeyAlgorithm, KexInit, NameList};
    use std::net::Ipv4Addr;

    fn ssh_obs(key_byte: u8) -> SshObservation {
        SshObservation {
            banner: Banner::new("OpenSSH_8.9p1", Some("Ubuntu-3ubuntu0.1")).unwrap(),
            kex_init: Some(KexInit::typical_openssh()),
            host_key: Some(HostKey::new(HostKeyAlgorithm::Ed25519, vec![key_byte; 32])),
        }
    }

    fn open_msg() -> OpenMessage {
        OpenMessage {
            version: 4,
            my_as: 23_456,
            hold_time: 90,
            bgp_identifier: Ipv4Addr::new(148, 170, 0, 33),
            optional_parameters: vec![
                OptionalParameter::Capability(Capability::RouteRefreshCisco),
                OptionalParameter::Capability(Capability::RouteRefresh),
                OptionalParameter::Capability(Capability::FourOctetAs { asn: 396_982 }),
            ],
        }
    }

    #[test]
    fn ssh_identifier_equal_for_same_device_different_connection() {
        let a = SshIdentifier::from_observation(&ssh_obs(7), SshIdentifierPolicy::Full).unwrap();
        let mut obs_b = ssh_obs(7);
        // Different connection: different KEXINIT cookie, same configuration.
        obs_b.kex_init.as_mut().unwrap().cookie = [9u8; 16];
        let b = SshIdentifier::from_observation(&obs_b, SshIdentifierPolicy::Full).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ssh_identifier_differs_when_key_differs() {
        let a = SshIdentifier::from_observation(&ssh_obs(7), SshIdentifierPolicy::Full).unwrap();
        let b = SshIdentifier::from_observation(&ssh_obs(8), SshIdentifierPolicy::Full).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn key_only_policy_merges_shared_default_keys() {
        // Two devices with the same factory-default key but different
        // software: KeyOnly conflates them, Full keeps them apart.
        let mut obs_b = ssh_obs(7);
        obs_b.banner = Banner::new("dropbear_2020.81", None).unwrap();
        obs_b.kex_init.as_mut().unwrap().encryption_server_to_client =
            NameList::new(["aes128-ctr"]);
        let a_key =
            SshIdentifier::from_observation(&ssh_obs(7), SshIdentifierPolicy::KeyOnly).unwrap();
        let b_key = SshIdentifier::from_observation(&obs_b, SshIdentifierPolicy::KeyOnly).unwrap();
        assert_eq!(a_key, b_key);
        let a_full =
            SshIdentifier::from_observation(&ssh_obs(7), SshIdentifierPolicy::Full).unwrap();
        let b_full = SshIdentifier::from_observation(&obs_b, SshIdentifierPolicy::Full).unwrap();
        assert_ne!(a_full, b_full);
    }

    #[test]
    fn ssh_identifier_requires_host_key() {
        let mut obs = ssh_obs(7);
        obs.host_key = None;
        assert!(SshIdentifier::from_observation(&obs, SshIdentifierPolicy::Full).is_none());
    }

    #[test]
    fn missing_kexinit_still_identifies_by_key_and_banner() {
        let mut obs = ssh_obs(3);
        obs.kex_init = None;
        let id = SshIdentifier::from_observation(&obs, SshIdentifierPolicy::Full).unwrap();
        assert!(id.capabilities.is_empty());
        assert!(!id.host_key.is_empty());
    }

    #[test]
    fn bgp_full_identifier_includes_all_open_fields() {
        let id = BgpIdentifier::from_open(&open_msg(), BgpIdentifierPolicy::FullOpen);
        assert_eq!(id.bgp_identifier, "148.170.0.33");
        assert_eq!(id.asn, 396_982);
        assert_eq!(id.hold_time, 90);
        assert_eq!(id.version, 4);
        assert!(id.open_length > 29);
        assert!(id.capabilities.contains("128:"));
        assert!(id.capabilities.contains("2:"));
    }

    #[test]
    fn bgp_identifier_only_policy_ignores_everything_else() {
        let mut other = open_msg();
        other.hold_time = 180;
        other.optional_parameters.clear();
        let a = BgpIdentifier::from_open(&open_msg(), BgpIdentifierPolicy::IdentifierOnly);
        let b = BgpIdentifier::from_open(&other, BgpIdentifierPolicy::IdentifierOnly);
        assert_eq!(a, b);
        let a_full = BgpIdentifier::from_open(&open_msg(), BgpIdentifierPolicy::FullOpen);
        let b_full = BgpIdentifier::from_open(&other, BgpIdentifierPolicy::FullOpen);
        assert_ne!(a_full, b_full);
    }

    #[test]
    fn capability_rendering_format_is_locked() {
        // The capability string is part of the BGP identifier, so its exact
        // format is load-bearing: changing it regroups alias sets.  Locked
        // here: `code:hexvalue` / `ptype:hexvalue`, comma-joined, lowercase
        // zero-padded hex, empty string for no parameters.
        assert_eq!(render_capabilities(&[]), "");
        let rendered = render_capabilities(&[
            OptionalParameter::Capability(Capability::RouteRefresh),
            OptionalParameter::Capability(Capability::FourOctetAs { asn: 396_982 }),
            OptionalParameter::Other {
                param_type: 9,
                value: vec![0x00, 0x0f, 0xa0],
            },
        ]);
        assert_eq!(rendered, "2:,65:00060eb6,p9:000fa0");
    }

    #[test]
    fn snmp_identifier_is_engine_hex() {
        let engine = EngineId::from_enterprise_mac(9, [1, 2, 3, 4, 5, 6]);
        let id = Snmpv3Identifier::from_engine_id(&engine);
        assert_eq!(id.engine_id, engine.to_hex());
    }

    #[test]
    fn protocol_identifiers_never_collide_across_protocols() {
        let ssh = ProtocolIdentifier::Ssh(
            SshIdentifier::from_observation(&ssh_obs(1), SshIdentifierPolicy::Full).unwrap(),
        );
        let bgp = ProtocolIdentifier::Bgp(BgpIdentifier::from_open(
            &open_msg(),
            BgpIdentifierPolicy::FullOpen,
        ));
        assert_ne!(ssh, bgp);
        assert_eq!(ssh.protocol_name(), "ssh");
        assert_eq!(bgp.protocol_name(), "bgp");
    }
}
