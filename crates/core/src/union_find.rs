//! A small disjoint-set (union–find) structure used when merging alias sets
//! across protocols and data sources.

/// Operation tallies of one [`UnionFind`] forest, kept as plain integers
/// on the forest itself (no atomics in the hot loops) and flushed to the
/// observability layer by serial callers via [`UnionFind::stats`].
///
/// `effective_unions` is a pure function of the merged partition
/// (each one reduces the component count by exactly one); the raw
/// `finds` / `unions` / `path_compressions` counts depend on union order
/// and the shard decomposition, so consumers must report them as
/// timing-class metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnionFindStats {
    /// Calls to [`UnionFind::find`] (including the two inside each union).
    pub finds: u64,
    /// Calls to [`UnionFind::union`].
    pub unions: u64,
    /// Unions that actually joined two distinct sets.
    pub effective_unions: u64,
    /// Parent links rewritten by path compression.
    pub path_compressions: u64,
}

/// Disjoint-set forest over `usize` elements with path compression and union
/// by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    stats: UnionFindStats,
}

impl UnionFind {
    /// Create a forest of `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            stats: UnionFindStats::default(),
        }
    }

    /// The forest's operation tallies so far.
    pub fn stats(&self) -> UnionFindStats {
        self.stats
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Append a fresh singleton element, returning its index — lets callers
    /// grow a forest lazily instead of pre-sizing it to a whole universe.
    pub fn push(&mut self) -> usize {
        let element = self.parent.len();
        self.parent.push(element);
        self.size.push(1);
        element
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Find the representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        self.stats.finds += 1;
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cursor = x;
        while self.parent[cursor] != root {
            let next = self.parent[cursor];
            self.parent[cursor] = root;
            self.stats.path_compressions += 1;
            cursor = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        self.stats.unions += 1;
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.stats.effective_unions += 1;
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Group all elements by representative, returning the groups.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        use std::collections::HashMap;
        let mut map: HashMap<usize, Vec<usize>> = HashMap::new();
        for element in 0..self.len() {
            let root = self.find(element);
            map.entry(root).or_default().push(element);
        }
        // lint:allow(det-hash-iter): groups are sorted by their unique head element right below
        let mut groups: Vec<Vec<usize>> = map.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }

    /// Check the forest's structural invariants: the parent and size
    /// vectors agree in length, every parent link stays in range, every
    /// parent chain reaches a canonical root (`parent[root] == root`)
    /// without cycling, and the root sizes partition the whole universe.
    ///
    /// Idempotence of the canonical root is what alias-set merging leans
    /// on; this checks it without path compression, so a valid forest is
    /// left untouched.  Compiled only under `debug_assertions` or the
    /// `validate` feature.
    #[cfg(any(debug_assertions, feature = "validate"))]
    pub fn validate(&self) -> Result<(), String> {
        let n = self.parent.len();
        if self.size.len() != n {
            return Err(format!(
                "union-find drift: {} parents vs {} sizes",
                n,
                self.size.len()
            ));
        }
        let mut root_weight = 0usize;
        for element in 0..n {
            let mut cursor = element;
            for _ in 0..=n {
                let parent = self.parent[cursor];
                if parent >= n {
                    return Err(format!(
                        "union-find drift: parent[{cursor}] = {parent} outside 0..{n}"
                    ));
                }
                if parent == cursor {
                    break;
                }
                cursor = parent;
            }
            if self.parent[cursor] != cursor {
                return Err(format!(
                    "union-find drift: parent chain from {element} never reaches a root"
                ));
            }
            if element == cursor {
                root_weight += self.size[cursor];
            }
        }
        if root_weight != n {
            return Err(format!(
                "union-find drift: root sizes sum to {root_weight}, expected {n}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert!(!uf.connected(0, 1));
        assert!(uf.union(0, 1));
        assert!(uf.connected(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(2, 3));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn push_grows_the_forest_one_singleton_at_a_time() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let a = uf.push();
        let b = uf.push();
        assert_eq!((a, b), (0, 1));
        assert_eq!(uf.len(), 2);
        assert!(!uf.connected(a, b));
        assert!(uf.union(a, b));
        let c = uf.push();
        assert!(!uf.connected(a, c));
        assert_eq!(uf.groups().len(), 2);
    }

    #[test]
    fn groups_partition_all_elements() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let groups = uf.groups();
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 6);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().any(|g| g.len() == 3 && g.contains(&4)));
    }

    #[test]
    fn validate_accepts_sound_forests_and_reports_drift() {
        assert_eq!(UnionFind::new(0).validate(), Ok(()));
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        assert_eq!(uf.validate(), Ok(()));

        let mut broken = uf.clone();
        broken.parent[0] = 9; // out-of-range link
        assert!(broken.validate().unwrap_err().contains("outside 0..4"));

        let mut broken = uf.clone();
        let root = broken.find(0);
        broken.size[root] = 1; // weights no longer partition
        assert!(broken.validate().unwrap_err().contains("root sizes sum"));

        let mut broken = uf;
        broken.size.pop();
        assert!(broken.validate().unwrap_err().contains("parents vs"));
    }

    proptest! {
        #[test]
        fn union_is_transitive_and_total(n in 2usize..60, pairs in prop::collection::vec((0usize..60, 0usize..60), 0..80)) {
            let mut uf = UnionFind::new(n);
            for (a, b) in pairs.iter().map(|&(a, b)| (a % n, b % n)) {
                uf.union(a, b);
            }
            // Structural invariants hold after an arbitrary union sequence.
            prop_assert_eq!(uf.validate(), Ok(()));
            // groups() partitions [0, n) exactly.
            let groups = uf.groups();
            let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
            // Elements of one group are mutually connected.
            for group in &groups {
                for window in group.windows(2) {
                    prop_assert!(uf.connected(window[0], window[1]));
                }
            }
        }
    }
}
