//! The interning layer the hot resolution path runs on (re-exported from
//! `alias-intern`, the bottom-layer crate, so `alias-scan` can share the
//! same id space without a dependency cycle).
//!
//! * [`AddrInterner`] — `IpAddr` ⇄ dense [`AddrId`]; a campaign interns
//!   every observed address once, and grouping + merging run on the ids.
//! * [`IdentInterner`] — [`crate::identifier::ProtocolIdentifier`] ⇄ dense
//!   [`IdentId`]; identifier grouping keys maps by id instead of by owned
//!   identifier values.
//! * [`CompactAliasSet`] — the id-based alias set (sorted `Vec<AddrId>`);
//!   `BTreeSet<IpAddr>` is resolved only at the report/rendering boundary.

pub use alias_intern::{
    sort_canonical_compact, AddrId, AddrInterner, CompactAliasSet, IdentId, Interner,
};

/// Interner for protocol identifiers: the id space identifier grouping
/// runs on.
pub type IdentInterner = Interner<crate::identifier::ProtocolIdentifier>;
