//! Cross-technique validation (the paper's Table 2).
//!
//! Lacking ground truth, the paper validates its alias sets by comparing the
//! partitions produced by different techniques over the addresses responsive
//! to *both*: a set "agrees" when the other technique groups exactly the
//! same addresses together.  The same machinery compares against MIDAR.
//!
//! Everything here runs in the id space: inputs are [`CompactAliasSet`]s
//! plus sorted [`AddrId`] universes interned against one shared
//! [`AddrInterner`](crate::intern::AddrInterner).  Agreement counting is
//! invariant under the (bijective) address ↔ id relabeling, so the results
//! are identical to the former `BTreeSet<IpAddr>` formulation — the parity
//! suite pins that down — while projection becomes a sorted-slice merge
//! walk instead of per-address tree probes.

use crate::intern::{AddrId, CompactAliasSet};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Outcome of one pairwise validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationResult {
    /// Number of sets (from technique A) that could be tested.
    pub sample_size: usize,
    /// Sets whose membership exactly matches a set of technique B.
    pub agree: usize,
    /// Sets with mismatching membership.
    pub disagree: usize,
}

impl ValidationResult {
    /// Agreement rate in `[0, 1]`; 1.0 when nothing could be tested.
    pub fn agreement_rate(&self) -> f64 {
        if self.sample_size == 0 {
            1.0
        } else {
            self.agree as f64 / self.sample_size as f64
        }
    }
}

/// Ids present in both sorted id slices, as a sorted vector.
pub fn common_ids(a: &[AddrId], b: &[AddrId]) -> Vec<AddrId> {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a must be sorted");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b must be sorted");
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Restrict `sets` to the sorted id `universe`, dropping sets that no longer
/// have at least two members.
pub fn project_compact(sets: &[CompactAliasSet], universe: &[AddrId]) -> Vec<CompactAliasSet> {
    sets.iter()
        .map(|set| CompactAliasSet::from_ids(common_ids(set.ids(), universe)))
        .filter(|set| set.len() >= 2)
        .collect()
}

/// Compare technique A's sets against technique B's sets over the ids
/// responsive to both techniques.
///
/// Both set lists are first projected onto `common`; every projected A set
/// is then checked for an exact membership match among the projected B sets.
/// Both inputs must share one interner — comparing ids minted by different
/// interners is meaningless (the resolver translates first).
pub fn cross_validate(
    sets_a: &[CompactAliasSet],
    sets_b: &[CompactAliasSet],
    common: &[AddrId],
) -> ValidationResult {
    let projected_a = project_compact(sets_a, common);
    let projected_b = project_compact(sets_b, common);
    let b_lookup: HashSet<&[AddrId]> = projected_b.iter().map(|s| s.ids()).collect();
    let mut result = ValidationResult {
        sample_size: projected_a.len(),
        ..Default::default()
    };
    for set in &projected_a {
        if b_lookup.contains(set.ids()) {
            result.agree += 1;
        } else {
            result.disagree += 1;
        }
    }
    result
}

/// Validation against an IPID-based technique such as MIDAR.
///
/// MIDAR can only test addresses with a usable (monotonic, sampleable) IPID
/// counter, so most sampled sets cannot be verified at all.  `testable`
/// is the set of addresses for which MIDAR produced usable measurements;
/// sampled sets whose projection onto `testable` retains fewer than two
/// addresses are reported as `unverifiable`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MidarValidation {
    /// Sets in the sample.
    pub sampled: usize,
    /// Sets MIDAR could not test (insufficient usable addresses).
    pub unverifiable: usize,
    /// The pairwise comparison over the verifiable sets.
    pub result: ValidationResult,
}

impl MidarValidation {
    /// Fraction of sampled sets MIDAR could verify at all.
    pub fn coverage(&self) -> f64 {
        if self.sampled == 0 {
            0.0
        } else {
            self.result.sample_size as f64 / self.sampled as f64
        }
    }
}

/// Compare sampled alias sets against a MIDAR-style partition, with
/// `testable` the sorted ids MIDAR could measure at all.
pub fn validate_against_midar(
    sampled_sets: &[CompactAliasSet],
    midar_sets: &[CompactAliasSet],
    testable: &[AddrId],
) -> MidarValidation {
    let projected = project_compact(sampled_sets, testable);
    let unverifiable = sampled_sets.len() - projected.len();
    let result = cross_validate(sampled_sets, midar_sets, testable);
    MidarValidation {
        sampled: sampled_sets.len(),
        unverifiable,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<AddrId> {
        raw.iter().copied().map(AddrId).collect()
    }

    fn set(raw: &[u32]) -> CompactAliasSet {
        CompactAliasSet::from_ids(ids(raw))
    }

    #[test]
    fn identical_partitions_agree_fully() {
        let a = vec![set(&[0, 1]), set(&[2, 3])];
        let common = ids(&[0, 1, 2, 3]);
        let result = cross_validate(&a, &a, &common);
        assert_eq!(result.sample_size, 2);
        assert_eq!(result.agree, 2);
        assert_eq!(result.disagree, 0);
        assert_eq!(result.agreement_rate(), 1.0);
    }

    #[test]
    fn split_sets_disagree() {
        let a = vec![set(&[0, 1, 2])];
        // Technique B splits the set in two.
        let b = vec![set(&[0, 1]), set(&[2, 3])];
        let common = ids(&[0, 1, 2]);
        let result = cross_validate(&a, &b, &common);
        assert_eq!(result.sample_size, 1);
        assert_eq!(result.disagree, 1);
        assert_eq!(result.agreement_rate(), 0.0);
    }

    #[test]
    fn projection_respects_the_common_universe() {
        // A's set contains an id B never saw; after projection onto the
        // common universe they agree.
        let a = vec![set(&[0, 1, 9])];
        let b = vec![set(&[0, 1])];
        let common = ids(&[0, 1]);
        let result = cross_validate(&a, &b, &common);
        assert_eq!(result.agree, 1);
    }

    #[test]
    fn sets_that_vanish_after_projection_are_not_counted() {
        let a = vec![set(&[0, 1]), set(&[5, 6])];
        let b = vec![set(&[0, 1])];
        // Only the first set intersects the common universe with ≥2 ids.
        let common = ids(&[0, 1, 5]);
        let result = cross_validate(&a, &b, &common);
        assert_eq!(result.sample_size, 1);
        assert_eq!(result.agree, 1);
    }

    #[test]
    fn empty_sample_has_full_agreement_by_convention() {
        let result = cross_validate(&[], &[], &[]);
        assert_eq!(result.sample_size, 0);
        assert_eq!(result.agreement_rate(), 1.0);
    }

    #[test]
    fn midar_validation_reports_coverage() {
        let sampled = vec![
            set(&[0, 1]), // testable, agrees
            set(&[2, 3]), // untestable (random IPIDs)
            set(&[4, 5]), // testable, MIDAR splits it
        ];
        let midar = vec![set(&[0, 1]), set(&[4, 9])];
        let testable = ids(&[0, 1, 4, 5]);
        let validation = validate_against_midar(&sampled, &midar, &testable);
        assert_eq!(validation.sampled, 3);
        assert_eq!(validation.unverifiable, 1);
        assert_eq!(validation.result.sample_size, 2);
        assert_eq!(validation.result.agree, 1);
        assert!((validation.coverage() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn common_ids_is_a_sorted_intersection() {
        assert_eq!(common_ids(&ids(&[0, 1]), &ids(&[1, 2])), ids(&[1]));
        assert_eq!(common_ids(&ids(&[0, 2, 4]), &ids(&[1, 3, 5])), ids(&[]));
        assert_eq!(common_ids(&ids(&[0, 1, 2, 3]), &ids(&[1, 3])), ids(&[1, 3]));
    }
}
