//! Cross-technique validation (the paper's Table 2).
//!
//! Lacking ground truth, the paper validates its alias sets by comparing the
//! partitions produced by different techniques over the addresses responsive
//! to *both*: a set "agrees" when the other technique groups exactly the
//! same addresses together.  The same machinery compares against MIDAR.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::IpAddr;

/// Outcome of one pairwise validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationResult {
    /// Number of sets (from technique A) that could be tested.
    pub sample_size: usize,
    /// Sets whose membership exactly matches a set of technique B.
    pub agree: usize,
    /// Sets with mismatching membership.
    pub disagree: usize,
}

impl ValidationResult {
    /// Agreement rate in `[0, 1]`; 1.0 when nothing could be tested.
    pub fn agreement_rate(&self) -> f64 {
        if self.sample_size == 0 {
            1.0
        } else {
            self.agree as f64 / self.sample_size as f64
        }
    }
}

/// Addresses present in both collections of responsive addresses.
pub fn common_addresses(a: &BTreeSet<IpAddr>, b: &BTreeSet<IpAddr>) -> BTreeSet<IpAddr> {
    a.intersection(b).copied().collect()
}

/// Restrict `sets` to `universe`, dropping sets that no longer have at least
/// two members.
pub fn project_sets(
    sets: &[BTreeSet<IpAddr>],
    universe: &BTreeSet<IpAddr>,
) -> Vec<BTreeSet<IpAddr>> {
    sets.iter()
        .map(|s| {
            s.intersection(universe)
                .copied()
                .collect::<BTreeSet<IpAddr>>()
        })
        .filter(|s| s.len() >= 2)
        .collect()
}

/// Compare technique A's sets against technique B's sets over the addresses
/// responsive to both techniques.
///
/// Both set lists are first projected onto `common`; every projected A set
/// is then checked for an exact membership match among the projected B sets.
pub fn cross_validate(
    sets_a: &[BTreeSet<IpAddr>],
    sets_b: &[BTreeSet<IpAddr>],
    common: &BTreeSet<IpAddr>,
) -> ValidationResult {
    let projected_a = project_sets(sets_a, common);
    let projected_b = project_sets(sets_b, common);
    let b_lookup: std::collections::HashSet<&BTreeSet<IpAddr>> = projected_b.iter().collect();
    let mut result = ValidationResult {
        sample_size: projected_a.len(),
        ..Default::default()
    };
    for set in &projected_a {
        if b_lookup.contains(set) {
            result.agree += 1;
        } else {
            result.disagree += 1;
        }
    }
    result
}

/// Validation against an IPID-based technique such as MIDAR.
///
/// MIDAR can only test addresses with a usable (monotonic, sampleable) IPID
/// counter, so most sampled sets cannot be verified at all.  `testable`
/// is the set of addresses for which MIDAR produced usable measurements;
/// sampled sets whose projection onto `testable` retains fewer than two
/// addresses are reported as `unverifiable`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MidarValidation {
    /// Sets in the sample.
    pub sampled: usize,
    /// Sets MIDAR could not test (insufficient usable addresses).
    pub unverifiable: usize,
    /// The pairwise comparison over the verifiable sets.
    pub result: ValidationResult,
}

impl MidarValidation {
    /// Fraction of sampled sets MIDAR could verify at all.
    pub fn coverage(&self) -> f64 {
        if self.sampled == 0 {
            0.0
        } else {
            self.result.sample_size as f64 / self.sampled as f64
        }
    }
}

/// Compare sampled alias sets against a MIDAR-style partition.
pub fn validate_against_midar(
    sampled_sets: &[BTreeSet<IpAddr>],
    midar_sets: &[BTreeSet<IpAddr>],
    testable: &BTreeSet<IpAddr>,
) -> MidarValidation {
    let projected = project_sets(sampled_sets, testable);
    let unverifiable = sampled_sets.len() - projected.len();
    let result = cross_validate(sampled_sets, midar_sets, testable);
    MidarValidation {
        sampled: sampled_sets.len(),
        unverifiable,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(addrs: &[&str]) -> BTreeSet<IpAddr> {
        addrs.iter().map(|a| a.parse().unwrap()).collect()
    }

    #[test]
    fn identical_partitions_agree_fully() {
        let a = vec![
            set(&["10.0.0.1", "10.0.0.2"]),
            set(&["10.1.0.1", "10.1.0.2"]),
        ];
        let common: BTreeSet<IpAddr> = a.iter().flatten().copied().collect();
        let result = cross_validate(&a, &a, &common);
        assert_eq!(result.sample_size, 2);
        assert_eq!(result.agree, 2);
        assert_eq!(result.disagree, 0);
        assert_eq!(result.agreement_rate(), 1.0);
    }

    #[test]
    fn split_sets_disagree() {
        let a = vec![set(&["10.0.0.1", "10.0.0.2", "10.0.0.3"])];
        // Technique B splits the set in two.
        let b = vec![
            set(&["10.0.0.1", "10.0.0.2"]),
            set(&["10.0.0.3", "10.0.0.4"]),
        ];
        let common = set(&["10.0.0.1", "10.0.0.2", "10.0.0.3"]);
        let result = cross_validate(&a, &b, &common);
        assert_eq!(result.sample_size, 1);
        assert_eq!(result.disagree, 1);
        assert_eq!(result.agreement_rate(), 0.0);
    }

    #[test]
    fn projection_respects_the_common_universe() {
        // A's set contains an address B never saw; after projection onto the
        // common universe they agree.
        let a = vec![set(&["10.0.0.1", "10.0.0.2", "10.0.0.9"])];
        let b = vec![set(&["10.0.0.1", "10.0.0.2"])];
        let common = set(&["10.0.0.1", "10.0.0.2"]);
        let result = cross_validate(&a, &b, &common);
        assert_eq!(result.agree, 1);
    }

    #[test]
    fn sets_that_vanish_after_projection_are_not_counted() {
        let a = vec![
            set(&["10.0.0.1", "10.0.0.2"]),
            set(&["10.5.0.1", "10.5.0.2"]),
        ];
        let b = vec![set(&["10.0.0.1", "10.0.0.2"])];
        // Only the first set intersects the common universe with ≥2 addrs.
        let common = set(&["10.0.0.1", "10.0.0.2", "10.5.0.1"]);
        let result = cross_validate(&a, &b, &common);
        assert_eq!(result.sample_size, 1);
        assert_eq!(result.agree, 1);
    }

    #[test]
    fn empty_sample_has_full_agreement_by_convention() {
        let result = cross_validate(&[], &[], &BTreeSet::new());
        assert_eq!(result.sample_size, 0);
        assert_eq!(result.agreement_rate(), 1.0);
    }

    #[test]
    fn midar_validation_reports_coverage() {
        let sampled = vec![
            set(&["10.0.0.1", "10.0.0.2"]), // testable, agrees
            set(&["10.1.0.1", "10.1.0.2"]), // untestable (random IPIDs)
            set(&["10.2.0.1", "10.2.0.2"]), // testable, MIDAR splits it
        ];
        let midar = vec![
            set(&["10.0.0.1", "10.0.0.2"]),
            set(&["10.2.0.1", "10.9.0.9"]),
        ];
        let testable = set(&["10.0.0.1", "10.0.0.2", "10.2.0.1", "10.2.0.2"]);
        let validation = validate_against_midar(&sampled, &midar, &testable);
        assert_eq!(validation.sampled, 3);
        assert_eq!(validation.unverifiable, 1);
        assert_eq!(validation.result.sample_size, 2);
        assert_eq!(validation.result.agree, 1);
        assert!((validation.coverage() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn common_addresses_is_an_intersection() {
        let a = set(&["10.0.0.1", "10.0.0.2"]);
        let b = set(&["10.0.0.2", "10.0.0.3"]);
        assert_eq!(common_addresses(&a, &b), set(&["10.0.0.2"]));
    }
}
