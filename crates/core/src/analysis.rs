//! AS-level analysis (Tables 5–6, Figures 5–6).

use std::collections::{BTreeSet, HashMap};
use std::net::IpAddr;

/// Number of distinct origin ASes per set (Figure 5).
///
/// Addresses without an AS annotation are ignored; sets with no annotated
/// address contribute a count of zero.
pub fn asns_per_set(sets: &[BTreeSet<IpAddr>], asn_of: &HashMap<IpAddr, u32>) -> Vec<usize> {
    sets.iter()
        .map(|set| {
            set.iter()
                .filter_map(|addr| asn_of.get(addr))
                .collect::<BTreeSet<_>>()
                .len()
        })
        .collect()
}

/// Attribute each set to one AS (the plurality AS of its members; ties break
/// towards the numerically smallest ASN) and count sets per AS.
pub fn sets_per_as(
    sets: &[BTreeSet<IpAddr>],
    asn_of: &HashMap<IpAddr, u32>,
) -> HashMap<u32, usize> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for set in sets {
        if let Some(asn) = plurality_as(set, asn_of) {
            *counts.entry(asn).or_insert(0) += 1;
        }
    }
    counts
}

/// The plurality AS of a set's members.
pub fn plurality_as(set: &BTreeSet<IpAddr>, asn_of: &HashMap<IpAddr, u32>) -> Option<u32> {
    let mut votes: HashMap<u32, usize> = HashMap::new();
    for addr in set {
        if let Some(&asn) = asn_of.get(addr) {
            *votes.entry(asn).or_insert(0) += 1;
        }
    }
    votes
        // lint:allow(det-hash-iter): max_by with a total (count, asn) order — result is order-independent
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(asn, _)| asn)
}

/// The `n` ASes with the most sets, as `(asn, set count)` sorted descending.
pub fn top_ases(
    sets: &[BTreeSet<IpAddr>],
    asn_of: &HashMap<IpAddr, u32>,
    n: usize,
) -> Vec<(u32, usize)> {
    let mut counts: Vec<(u32, usize)> = sets_per_as(sets, asn_of).into_iter().collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts.truncate(n);
    counts
}

/// Number of ASes with at least one set.
pub fn ases_with_sets(sets: &[BTreeSet<IpAddr>], asn_of: &HashMap<IpAddr, u32>) -> usize {
    sets_per_as(sets, asn_of).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(addrs: &[&str]) -> BTreeSet<IpAddr> {
        addrs.iter().map(|a| a.parse().unwrap()).collect()
    }

    fn asn_map(entries: &[(&str, u32)]) -> HashMap<IpAddr, u32> {
        entries
            .iter()
            .map(|(a, asn)| (a.parse().unwrap(), *asn))
            .collect()
    }

    #[test]
    fn asns_per_set_counts_distinct_ases() {
        let sets = vec![
            set(&["10.0.0.1", "10.0.0.2"]),
            set(&["10.0.0.3", "10.1.0.1", "10.2.0.1"]),
        ];
        let asns = asn_map(&[
            ("10.0.0.1", 100),
            ("10.0.0.2", 100),
            ("10.0.0.3", 100),
            ("10.1.0.1", 200),
            ("10.2.0.1", 300),
        ]);
        assert_eq!(asns_per_set(&sets, &asns), vec![1, 3]);
    }

    #[test]
    fn plurality_attribution_breaks_ties_to_smallest_asn() {
        let s = set(&["10.0.0.1", "10.1.0.1"]);
        let asns = asn_map(&[("10.0.0.1", 300), ("10.1.0.1", 100)]);
        assert_eq!(plurality_as(&s, &asns), Some(100));
        let s2 = set(&["10.0.0.1", "10.0.0.2", "10.1.0.1"]);
        let asns2 = asn_map(&[("10.0.0.1", 300), ("10.0.0.2", 300), ("10.1.0.1", 100)]);
        assert_eq!(plurality_as(&s2, &asns2), Some(300));
        assert_eq!(plurality_as(&set(&["10.9.9.9"]), &asns), None);
    }

    #[test]
    fn sets_per_as_and_top_ases() {
        let sets = vec![
            set(&["10.0.0.1", "10.0.0.2"]),
            set(&["10.0.1.1", "10.0.1.2"]),
            set(&["10.1.0.1", "10.1.0.2"]),
        ];
        let asns = asn_map(&[
            ("10.0.0.1", 14_061),
            ("10.0.0.2", 14_061),
            ("10.0.1.1", 14_061),
            ("10.0.1.2", 14_061),
            ("10.1.0.1", 701),
            ("10.1.0.2", 701),
        ]);
        let per_as = sets_per_as(&sets, &asns);
        assert_eq!(per_as[&14_061], 2);
        assert_eq!(per_as[&701], 1);
        assert_eq!(top_ases(&sets, &asns, 1), vec![(14_061, 2)]);
        assert_eq!(ases_with_sets(&sets, &asns), 2);
    }

    #[test]
    fn unannotated_addresses_are_ignored() {
        let sets = vec![set(&["10.0.0.1", "10.0.0.2"])];
        let asns = HashMap::new();
        assert_eq!(asns_per_set(&sets, &asns), vec![0]);
        assert!(sets_per_as(&sets, &asns).is_empty());
        assert!(top_ases(&sets, &asns, 5).is_empty());
    }
}
