//! AS-level analysis (Tables 5–6, Figures 5–6).
//!
//! Attribution runs in the id space: an [`AsnTable`] is a dense
//! `AddrId → Option<ASN>` column (the same shape the observation store
//! keeps), and every statistic takes [`CompactAliasSet`]s.  Lookups are
//! array indexing instead of map probes, and nothing here keys a container
//! by address.

use crate::intern::{AddrId, CompactAliasSet};
use std::collections::{BTreeSet, HashMap};

/// Dense `AddrId → Option<ASN>` annotation column.
///
/// Built once per campaign from the interner's id space; ids beyond the
/// table's length read as unannotated, so a table built from a prefix of a
/// later-extended interner stays valid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsnTable {
    asns: Vec<Option<u32>>,
}

impl AsnTable {
    /// An empty table where every id is unannotated.
    pub fn new(len: usize) -> Self {
        AsnTable {
            asns: vec![None; len],
        }
    }

    /// Build a table covering `len` ids from `(id, asn)` annotations.
    /// Later duplicates win, matching map-insert semantics.
    pub fn from_pairs<I: IntoIterator<Item = (AddrId, u32)>>(len: usize, pairs: I) -> Self {
        let mut table = AsnTable::new(len);
        for (id, asn) in pairs {
            table.annotate(id, asn);
        }
        table
    }

    /// Annotate one id, growing the table if needed.
    pub fn annotate(&mut self, id: AddrId, asn: u32) {
        if id.index() >= self.asns.len() {
            self.asns.resize(id.index() + 1, None);
        }
        self.asns[id.index()] = Some(asn);
    }

    /// The AS annotation of `id`, if any.
    pub fn get(&self, id: AddrId) -> Option<u32> {
        self.asns.get(id.index()).copied().flatten()
    }

    /// Number of id slots (annotated or not).
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// True when the table covers no ids at all.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }
}

/// Number of distinct origin ASes per set (Figure 5).
///
/// Addresses without an AS annotation are ignored; sets with no annotated
/// address contribute a count of zero.
pub fn asns_per_set(sets: &[CompactAliasSet], asn_of: &AsnTable) -> Vec<usize> {
    sets.iter()
        .map(|set| {
            set.iter()
                .filter_map(|id| asn_of.get(id))
                .collect::<BTreeSet<u32>>()
                .len()
        })
        .collect()
}

/// Attribute each set to one AS (the plurality AS of its members; ties break
/// towards the numerically smallest ASN) and count sets per AS.
pub fn sets_per_as(sets: &[CompactAliasSet], asn_of: &AsnTable) -> HashMap<u32, usize> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for set in sets {
        if let Some(asn) = plurality_as(set, asn_of) {
            *counts.entry(asn).or_insert(0) += 1;
        }
    }
    counts
}

/// The plurality AS of a set's members.
pub fn plurality_as(set: &CompactAliasSet, asn_of: &AsnTable) -> Option<u32> {
    let mut votes: HashMap<u32, usize> = HashMap::new();
    for id in set.iter() {
        if let Some(asn) = asn_of.get(id) {
            *votes.entry(asn).or_insert(0) += 1;
        }
    }
    votes
        // lint:allow(det-hash-iter): max_by with a total (count, asn) order — result is order-independent
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(asn, _)| asn)
}

/// The `n` ASes with the most sets, as `(asn, set count)` sorted descending.
pub fn top_ases(sets: &[CompactAliasSet], asn_of: &AsnTable, n: usize) -> Vec<(u32, usize)> {
    let mut counts: Vec<(u32, usize)> = sets_per_as(sets, asn_of).into_iter().collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts.truncate(n);
    counts
}

/// Number of ASes with at least one set.
pub fn ases_with_sets(sets: &[CompactAliasSet], asn_of: &AsnTable) -> usize {
    sets_per_as(sets, asn_of).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(raw: &[u32]) -> CompactAliasSet {
        CompactAliasSet::from_ids(raw.iter().copied().map(AddrId).collect())
    }

    fn table(entries: &[(u32, u32)]) -> AsnTable {
        let len = entries.iter().map(|&(id, _)| id + 1).max().unwrap_or(0);
        AsnTable::from_pairs(
            len as usize,
            entries.iter().map(|&(id, asn)| (AddrId(id), asn)),
        )
    }

    #[test]
    fn asns_per_set_counts_distinct_ases() {
        let sets = vec![set(&[0, 1]), set(&[2, 3, 4])];
        let asns = table(&[(0, 100), (1, 100), (2, 100), (3, 200), (4, 300)]);
        assert_eq!(asns_per_set(&sets, &asns), vec![1, 3]);
    }

    #[test]
    fn plurality_attribution_breaks_ties_to_smallest_asn() {
        let s = set(&[0, 1]);
        let asns = table(&[(0, 300), (1, 100)]);
        assert_eq!(plurality_as(&s, &asns), Some(100));
        let s2 = set(&[0, 2, 1]);
        let asns2 = table(&[(0, 300), (2, 300), (1, 100)]);
        assert_eq!(plurality_as(&s2, &asns2), Some(300));
        assert_eq!(plurality_as(&set(&[9]), &asns), None);
    }

    #[test]
    fn sets_per_as_and_top_ases() {
        let sets = vec![set(&[0, 1]), set(&[2, 3]), set(&[4, 5])];
        let asns = table(&[
            (0, 14_061),
            (1, 14_061),
            (2, 14_061),
            (3, 14_061),
            (4, 701),
            (5, 701),
        ]);
        let per_as = sets_per_as(&sets, &asns);
        assert_eq!(per_as[&14_061], 2);
        assert_eq!(per_as[&701], 1);
        assert_eq!(top_ases(&sets, &asns, 1), vec![(14_061, 2)]);
        assert_eq!(ases_with_sets(&sets, &asns), 2);
    }

    #[test]
    fn unannotated_addresses_are_ignored() {
        let sets = vec![set(&[0, 1])];
        let asns = AsnTable::new(0);
        assert_eq!(asns_per_set(&sets, &asns), vec![0]);
        assert!(sets_per_as(&sets, &asns).is_empty());
        assert!(top_ases(&sets, &asns, 5).is_empty());
    }

    #[test]
    fn annotate_grows_the_table() {
        let mut asns = AsnTable::new(1);
        asns.annotate(AddrId(5), 42);
        assert_eq!(asns.get(AddrId(5)), Some(42));
        assert_eq!(asns.get(AddrId(3)), None);
        assert_eq!(asns.get(AddrId(900)), None, "out of range reads as None");
        assert_eq!(asns.len(), 6);
    }
}
