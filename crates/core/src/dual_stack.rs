//! Dual-stack inference: pairing IPv4 and IPv6 addresses of the same device.
//!
//! A dual-stack set is any identifier observed on at least one IPv4 *and* at
//! least one IPv6 address.  Unlike alias sets, a dual-stack set does not need
//! two addresses of the same family — a single IPv4 paired with a single
//! IPv6 address (by far the most common case, 88% in the paper) already
//! counts.

use crate::alias_set::AliasSetCollection;
use crate::identifier::ProtocolIdentifier;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::IpAddr;

/// One dual-stack set.  Members are sorted, distinct vectors rather than
/// address sets — dual-stack sets are derived once and then only read, so
/// they need ordered iteration, not membership tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualStackSet {
    /// The shared identifier.
    pub identifier: ProtocolIdentifier,
    /// IPv4 members, sorted and distinct.
    pub ipv4: Vec<IpAddr>,
    /// IPv6 members, sorted and distinct.
    pub ipv6: Vec<IpAddr>,
}

impl DualStackSet {
    /// Total number of member addresses.
    pub fn len(&self) -> usize {
        self.ipv4.len() + self.ipv6.len()
    }

    /// Whether the set is empty (never the case for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.ipv4.is_empty() && self.ipv6.is_empty()
    }

    /// Whether the set is the minimal one-IPv4 / one-IPv6 pairing.
    pub fn is_simple_pair(&self) -> bool {
        self.ipv4.len() == 1 && self.ipv6.len() == 1
    }
}

/// All dual-stack sets of a collection, plus the counters the paper reports
/// in Table 4.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualStackReport {
    /// The dual-stack sets.
    pub sets: Vec<DualStackSet>,
}

impl DualStackReport {
    /// Derive dual-stack sets from an alias-set collection.
    pub fn from_collection(collection: &AliasSetCollection) -> Self {
        let mut sets: Vec<DualStackSet> = collection
            .sets()
            .iter()
            .filter_map(|set| {
                let ipv4 = set.ipv4_addrs();
                let ipv6 = set.ipv6_addrs();
                if ipv4.is_empty() || ipv6.is_empty() {
                    None
                } else {
                    // BTreeSet iteration is ordered, so the vectors come
                    // out sorted and distinct.
                    Some(DualStackSet {
                        identifier: set.identifier.clone(),
                        ipv4: ipv4.into_iter().collect(),
                        ipv6: ipv6.into_iter().collect(),
                    })
                }
            })
            .collect();
        sets.sort_by_key(|set| std::cmp::Reverse(set.len()));
        DualStackReport { sets }
    }

    /// Number of dual-stack sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Distinct IPv4 addresses covered.
    pub fn ipv4_addresses(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.ipv4.iter())
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Distinct IPv6 addresses covered.
    pub fn ipv6_addresses(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.ipv6.iter())
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Fraction of sets that are a single IPv4 + single IPv6 pair.
    pub fn simple_pair_fraction(&self) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        self.sets.iter().filter(|s| s.is_simple_pair()).count() as f64 / self.sets.len() as f64
    }

    /// Fraction of sets with a total of 2–10 addresses that are not simple
    /// pairs, and fraction with more than 10 addresses (the three-way split
    /// the paper reports).
    pub fn size_split(&self) -> (f64, f64, f64) {
        if self.sets.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let total = self.sets.len() as f64;
        let simple = self.sets.iter().filter(|s| s.is_simple_pair()).count() as f64;
        let medium = self
            .sets
            .iter()
            .filter(|s| !s.is_simple_pair() && s.len() <= 10)
            .count() as f64;
        let large = self.sets.iter().filter(|s| s.len() > 10).count() as f64;
        (simple / total, medium / total, large / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{ExtractionConfig, IdentifierExtractor};
    use alias_netsim::SimTime;
    use alias_scan::{DataSource, ServiceObservation, ServicePayload};
    use alias_wire::ssh::{Banner, HostKey, HostKeyAlgorithm, KexInit, SshObservation};

    fn ssh_obs(addr: &str, key_byte: u8) -> ServiceObservation {
        ServiceObservation {
            addr: addr.parse().unwrap(),
            port: 22,
            source: DataSource::Active,
            timestamp: SimTime::ZERO,
            asn: Some(1),
            payload: ServicePayload::Ssh(SshObservation {
                banner: Banner::new("OpenSSH_8.9p1", None).unwrap(),
                kex_init: Some(KexInit::typical_openssh()),
                host_key: Some(HostKey::new(HostKeyAlgorithm::Ed25519, vec![key_byte; 32])),
            }),
        }
    }

    fn report(observations: &[ServiceObservation]) -> DualStackReport {
        let extractor = IdentifierExtractor::new(ExtractionConfig::paper());
        let collection = AliasSetCollection::from_observations(observations.iter(), &extractor);
        DualStackReport::from_collection(&collection)
    }

    #[test]
    fn single_pair_is_a_dual_stack_set() {
        let report = report(&[ssh_obs("10.0.0.1", 1), ssh_obs("2001:db8::1", 1)]);
        assert_eq!(report.set_count(), 1);
        assert_eq!(report.ipv4_addresses(), 1);
        assert_eq!(report.ipv6_addresses(), 1);
        assert!(report.sets[0].is_simple_pair());
        assert_eq!(report.simple_pair_fraction(), 1.0);
        assert_eq!(report.sets[0].len(), 2);
        assert!(!report.sets[0].is_empty());
    }

    #[test]
    fn v4_only_and_v6_only_devices_are_excluded() {
        let report = report(&[
            ssh_obs("10.0.0.1", 1),
            ssh_obs("10.0.0.2", 1),
            ssh_obs("2001:db8::7", 2),
        ]);
        assert_eq!(report.set_count(), 0);
        assert_eq!(report.simple_pair_fraction(), 0.0);
    }

    #[test]
    fn size_split_accounts_for_every_set() {
        let mut obs = vec![
            // Simple pair.
            ssh_obs("10.0.1.1", 1),
            ssh_obs("2001:db8:1::1", 1),
            // Medium set: 3 v4 + 2 v6.
            ssh_obs("10.0.2.1", 2),
            ssh_obs("10.0.2.2", 2),
            ssh_obs("10.0.2.3", 2),
            ssh_obs("2001:db8:2::1", 2),
            ssh_obs("2001:db8:2::2", 2),
        ];
        // Large set: 8 v4 + 4 v6 = 12 addresses.
        for i in 0..8 {
            obs.push(ssh_obs(&format!("10.0.3.{}", i + 1), 3));
        }
        for i in 0..4 {
            obs.push(ssh_obs(&format!("2001:db8:3::{}", i + 1), 3));
        }
        let report = report(&obs);
        assert_eq!(report.set_count(), 3);
        let (simple, medium, large) = report.size_split();
        assert!((simple + medium + large - 1.0).abs() < 1e-9);
        assert!((simple - 1.0 / 3.0).abs() < 1e-9);
        assert!((medium - 1.0 / 3.0).abs() < 1e-9);
        assert!((large - 1.0 / 3.0).abs() < 1e-9);
        // The largest set is sorted first.
        assert_eq!(report.sets[0].len(), 12);
    }

    #[test]
    fn empty_input_is_harmless() {
        let report = report(&[]);
        assert_eq!(report.set_count(), 0);
        assert_eq!(report.size_split(), (0.0, 0.0, 0.0));
    }
}
