//! Report formatting helpers used by the experiment binaries.
//!
//! The binaries print tables in the same "505k (3.2M)" style the paper uses,
//! so measured values can be compared against the published ones at a
//! glance.

/// Format a count the way the paper prints them: `987`, `12k`, `1.4M`.
pub fn format_count(value: usize) -> String {
    if value >= 1_000_000 {
        let millions = value as f64 / 1_000_000.0;
        if millions >= 10.0 {
            format!("{millions:.0}M")
        } else {
            format!("{millions:.1}M")
        }
    } else if value >= 1_000 {
        let thousands = value as f64 / 1_000.0;
        if thousands >= 10.0 {
            format!("{thousands:.0}k")
        } else {
            format!("{thousands:.1}k")
        }
    } else {
        value.to_string()
    }
}

/// Format a fraction as a percentage with no decimals, e.g. `96%`.
pub fn format_pct(fraction: f64) -> String {
    format!("{:.0}%", fraction * 100.0)
}

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, &width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
                if i + 1 < columns {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_owned()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total_width));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Render ECDF points as `x<TAB>y` lines, the format used to regenerate the
/// paper's figures.
pub fn render_ecdf(points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    for (x, y) in points {
        out.push_str(&format!("{x:.0}\t{y:.4}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_formatting_matches_paper_style() {
        assert_eq!(format_count(0), "0");
        assert_eq!(format_count(987), "987");
        assert_eq!(format_count(1_340), "1.3k");
        assert_eq!(format_count(12_000), "12k");
        assert_eq!(format_count(505_000), "505k");
        assert_eq!(format_count(1_400_000), "1.4M");
        assert_eq!(format_count(15_900_000), "16M");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(format_pct(0.96), "96%");
        assert_eq!(format_pct(1.0), "100%");
        assert_eq!(format_pct(0.0), "0%");
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new(["Protocol", "# IPs", "# ASN"]);
        table.row(["SSH", "15.9M", "46.1k"]);
        table.row(["BGP", "364k", "6.5k"]);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Protocol"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "15.9M" and "364k" start at the same offset.
        let off_a = lines[2].find("15.9M").unwrap();
        let off_b = lines[3].find("364k").unwrap();
        assert_eq!(off_a, off_b);
    }

    #[test]
    fn table_pads_short_rows() {
        let mut table = TextTable::new(["a", "b", "c"]);
        table.row(["1"]);
        let rendered = table.render();
        assert!(rendered.lines().count() >= 3);
    }

    #[test]
    fn ecdf_rendering() {
        let out = render_ecdf(&[(2.0, 0.5), (10.0, 1.0)]);
        assert_eq!(out, "2\t0.5000\n10\t1.0000\n");
    }
}
