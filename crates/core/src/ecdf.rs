//! Empirical cumulative distribution functions.
//!
//! Figures 3–6 of the paper are ECDFs (addresses per alias set, ASes per
//! set, sets per AS).  This module provides the small numeric helper the
//! experiment binaries use to regenerate those series.

use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    /// Sorted samples.
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from any collection of samples (NaNs are dropped).
    pub fn from_values<I>(values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let mut sorted: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs removed"));
        Ecdf { sorted }
    }

    /// Build from integer counts (the common case: set sizes).
    pub fn from_counts<I>(values: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        Self::from_values(values.into_iter().map(|v| v as f64))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (q in `[0, 1]`), `None` for an empty ECDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// The step points of the ECDF as `(x, P(X ≤ x))`, one per distinct value.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut points = Vec::new();
        let mut i = 0;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            let mut j = i;
            while j < self.sorted.len() && self.sorted[j] == x {
                j += 1;
            }
            points.push((x, j as f64 / n));
            i = j;
        }
        points
    }

    /// Sample the ECDF at the given x values (useful for fixed plotting grids).
    pub fn sample_at(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_le(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_fractions() {
        let ecdf = Ecdf::from_counts([2usize, 2, 2, 3, 10, 100]);
        assert_eq!(ecdf.len(), 6);
        assert!(!ecdf.is_empty());
        assert!((ecdf.fraction_le(2.0) - 0.5).abs() < 1e-9);
        assert!((ecdf.fraction_le(9.9) - 4.0 / 6.0).abs() < 1e-9);
        assert_eq!(ecdf.fraction_le(100.0), 1.0);
        assert_eq!(ecdf.fraction_le(1.0), 0.0);
    }

    #[test]
    fn quantiles() {
        let ecdf = Ecdf::from_counts(1..=100usize);
        assert_eq!(ecdf.quantile(0.0), Some(1.0));
        assert_eq!(ecdf.quantile(1.0), Some(100.0));
        let median = ecdf.quantile(0.5).unwrap();
        assert!((49.0..=51.0).contains(&median));
        assert!(Ecdf::from_values([]).quantile(0.5).is_none());
    }

    #[test]
    fn points_are_monotone_and_end_at_one() {
        let ecdf = Ecdf::from_counts([5usize, 1, 1, 7, 7, 7, 2]);
        let points = ecdf.points();
        assert!(points
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(points.last().unwrap().1, 1.0);
        // Distinct x values only.
        assert_eq!(points.len(), 4);
    }

    #[test]
    fn sample_at_grid() {
        let ecdf = Ecdf::from_counts([1usize, 2, 3, 4]);
        let sampled = ecdf.sample_at(&[0.0, 2.0, 10.0]);
        assert_eq!(sampled[0].1, 0.0);
        assert_eq!(sampled[1].1, 0.5);
        assert_eq!(sampled[2].1, 1.0);
    }

    #[test]
    fn nan_values_are_dropped() {
        let ecdf = Ecdf::from_values([1.0, f64::NAN, 2.0]);
        assert_eq!(ecdf.len(), 2);
    }

    proptest! {
        #[test]
        fn ecdf_is_a_valid_cdf(values in prop::collection::vec(0u32..10_000, 1..200)) {
            let ecdf = Ecdf::from_counts(values.iter().map(|&v| v as usize));
            // Monotone non-decreasing over a grid, bounded by [0, 1].
            let mut last = 0.0;
            for x in (0..=10_000u32).step_by(97) {
                let p = ecdf.fraction_le(x as f64);
                prop_assert!((0.0..=1.0).contains(&p));
                prop_assert!(p >= last);
                last = p;
            }
            prop_assert_eq!(ecdf.fraction_le(10_000.0), 1.0);
        }
    }
}
