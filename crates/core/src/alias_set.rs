//! Alias sets: groups of addresses sharing a protocol identifier.
//!
//! Grouping runs in id space: identifiers are interned to
//! [`IdentId`](crate::intern::IdentId)s and
//! addresses to [`AddrId`]s, so the per-observation work is two hash
//! lookups and a `Vec` push — no owned-`String` map keys, no per-insert
//! ordered-set rebalancing.  Addresses come back only when a collection or
//! [`CompactGrouping`] is materialised for reports.

use crate::analysis::AsnTable;
use crate::extract::IdentifierExtractor;
use crate::identifier::ProtocolIdentifier;
use crate::intern::{sort_canonical_compact, AddrId, AddrInterner, CompactAliasSet, IdentInterner};
use alias_scan::{ObservationSink, ObservationView, ServiceObservation, ServicePayload};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::IpAddr;

/// One alias set: the identifier and every address observed with it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AliasSet {
    /// The shared identifier.
    pub identifier: ProtocolIdentifier,
    /// All addresses (IPv4 and IPv6) observed with the identifier.
    // lint:allow(id-space): report boundary — collections carry resolved addresses
    pub addrs: BTreeSet<IpAddr>,
}

impl AliasSet {
    /// IPv4 members.
    // lint:allow(id-space): report boundary — family views are rendered output
    pub fn ipv4_addrs(&self) -> BTreeSet<IpAddr> {
        self.addrs.iter().copied().filter(IpAddr::is_ipv4).collect()
    }

    /// IPv6 members.
    // lint:allow(id-space): report boundary — family views are rendered output
    pub fn ipv6_addrs(&self) -> BTreeSet<IpAddr> {
        self.addrs.iter().copied().filter(IpAddr::is_ipv6).collect()
    }

    /// Total number of member addresses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the set is empty (never the case for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// All alias sets produced from a batch of observations, together with the
/// per-address AS annotation needed by the AS-level analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AliasSetCollection {
    sets: Vec<AliasSet>,
    /// Address → origin AS annotations carried over from the observations,
    /// sorted by address for binary-search lookup.  Builders key the
    /// annotations by [`AddrId`] while grouping; the pairs here are the
    /// resolved rendering of that column.
    asn_pairs: Vec<(IpAddr, u32)>,
}

/// Streaming construction of an [`AliasSetCollection`]: push observations
/// one at a time (or as an [`ObservationSink`] fed by a producer), then
/// [`finish`](Self::finish).
///
/// This is the single-pass path behind
/// [`AliasSetCollection::from_observations`]; producers that stream —
/// `CampaignData::stream_into`, record replayers — can group without ever
/// materialising a `Vec<&ServiceObservation>` in between.
#[derive(Debug, Clone, Default)]
pub struct AliasSetBuilder {
    extractor: IdentifierExtractor,
    addrs: AddrInterner,
    idents: IdentInterner,
    /// Member ids per identifier, indexed by [`IdentId`]; may hold
    /// duplicates until [`finish`](Self::finish) deduplicates.
    groups: Vec<Vec<AddrId>>,
    asn_of: AsnTable,
}

impl AliasSetBuilder {
    /// A builder grouping with the given extraction policies.
    pub fn new(extractor: IdentifierExtractor) -> Self {
        AliasSetBuilder {
            extractor,
            addrs: AddrInterner::new(),
            idents: IdentInterner::new(),
            groups: Vec::new(),
            asn_of: AsnTable::default(),
        }
    }

    /// Consume one observation.  Observations the extractor cannot identify
    /// are dropped, exactly as the paper drops hosts whose scan did not
    /// yield the required material.
    pub fn push(&mut self, observation: &ServiceObservation) {
        self.push_parts(observation.addr, observation.asn, &observation.payload);
    }

    /// Consume one observation from its parts — the columnar entry point:
    /// a store view hands over the address, the AS annotation and a
    /// borrowed payload without materialising a row.
    pub fn push_parts(&mut self, addr: IpAddr, asn: Option<u32>, payload: &ServicePayload) {
        let Some(identifier) = self.extractor.extract_payload(payload) else {
            return;
        };
        let ident = self.idents.intern(identifier);
        if ident.index() == self.groups.len() {
            self.groups.push(Vec::new());
        }
        let addr_id = self.addrs.intern(addr);
        self.groups[ident.index()].push(addr_id);
        if let Some(asn) = asn {
            self.asn_of.annotate(addr_id, asn);
        }
    }

    /// Finish grouping and produce the collection (deterministic order:
    /// biggest sets first, ties broken by members).
    pub fn finish(self) -> AliasSetCollection {
        let addrs = self.addrs;
        // Resolve the dense ASN column to sorted (address, ASN) pairs —
        // walking ids in order is deterministic, the final order is by
        // address for binary-search lookup.
        let mut asn_pairs: Vec<(IpAddr, u32)> = (0..addrs.len() as u32)
            .filter_map(|raw| {
                let id = AddrId(raw);
                self.asn_of.get(id).map(|asn| (addrs.addr(id), asn))
            })
            .collect();
        asn_pairs.sort_unstable_by_key(|&(addr, _)| addr);
        let mut sets: Vec<AliasSet> = self
            .idents
            .into_keys()
            .into_iter()
            .zip(self.groups)
            .map(|(identifier, ids)| AliasSet {
                identifier,
                addrs: ids.iter().map(|&id| addrs.addr(id)).collect(),
            })
            .collect();
        sets.sort_by(|a, b| {
            b.len()
                .cmp(&a.len())
                .then_with(|| a.addrs.iter().next().cmp(&b.addrs.iter().next()))
        });
        AliasSetCollection { sets, asn_pairs }
    }
}

impl ObservationSink for AliasSetBuilder {
    fn accept(&mut self, observation: &ServiceObservation) {
        self.push(observation);
    }
}

impl AliasSetCollection {
    /// Group `observations` by extracted identifier.
    ///
    /// Grouping is identifier-based, so observations of the same address
    /// from several sources collapse naturally.  This is the pull-based
    /// convenience over [`AliasSetBuilder`], which also accepts pushed
    /// (streamed) observations.
    pub fn from_observations<'a, I>(observations: I, extractor: &IdentifierExtractor) -> Self
    where
        I: IntoIterator<Item = &'a ServiceObservation>,
    {
        let mut builder = AliasSetBuilder::new(*extractor);
        builder.accept_all(observations);
        builder.finish()
    }

    /// Group the rows of a columnar store view — the zero-materialisation
    /// counterpart of [`Self::from_observations`]: addresses, AS
    /// annotations and borrowed payloads are read straight from the
    /// columns.
    pub fn from_view(view: &ObservationView<'_>, extractor: &IdentifierExtractor) -> Self {
        let mut builder = AliasSetBuilder::new(*extractor);
        for i in 0..view.len() {
            builder.push_parts(view.addr_at(i), view.asn_at(i), view.payload_at(i));
        }
        builder.finish()
    }

    /// All sets (including singletons).
    pub fn sets(&self) -> &[AliasSet] {
        &self.sets
    }

    /// The AS annotations carried over from the observations, as
    /// `(address, ASN)` pairs sorted by address.
    pub fn asn_pairs(&self) -> &[(IpAddr, u32)] {
        &self.asn_pairs
    }

    /// Origin AS of one address, if known.
    pub fn asn(&self, addr: IpAddr) -> Option<u32> {
        self.asn_pairs
            .binary_search_by_key(&addr, |&(a, _)| a)
            .ok()
            .map(|i| self.asn_pairs[i].1)
    }

    /// Sets with at least two members — what the paper calls alias sets.
    pub fn non_singleton_sets(&self) -> Vec<&AliasSet> {
        self.sets.iter().filter(|s| s.len() >= 2).collect()
    }

    /// Sets restricted to one address family, keeping only those that remain
    /// non-singleton after the restriction (used for the per-family tables).
    // lint:allow(id-space): report boundary — family views feed the rendered tables
    pub fn family_sets(&self, ipv6: bool) -> Vec<BTreeSet<IpAddr>> {
        self.sets
            .iter()
            .map(|s| if ipv6 { s.ipv6_addrs() } else { s.ipv4_addrs() })
            .filter(|members| members.len() >= 2)
            .collect()
    }

    /// Non-singleton IPv4 alias sets.
    // lint:allow(id-space): report boundary — family views feed the rendered tables
    pub fn ipv4_sets(&self) -> Vec<BTreeSet<IpAddr>> {
        self.family_sets(false)
    }

    /// Non-singleton IPv6 alias sets.
    // lint:allow(id-space): report boundary — family views feed the rendered tables
    pub fn ipv6_sets(&self) -> Vec<BTreeSet<IpAddr>> {
        self.family_sets(true)
    }

    /// Number of distinct addresses covered by the non-singleton sets of one
    /// address family.
    pub fn covered_addresses(&self, ipv6: bool) -> usize {
        self.family_sets(ipv6).iter().map(BTreeSet::len).sum()
    }

    /// All distinct addresses in the collection (any family, any set size).
    // lint:allow(id-space): report boundary — resolved view over the collection
    pub fn all_addresses(&self) -> BTreeSet<IpAddr> {
        self.sets
            .iter()
            .flat_map(|s| s.addrs.iter().copied())
            .collect()
    }

    /// Set sizes of one address family (input for the ECDF figures).
    pub fn set_sizes(&self, ipv6: bool) -> Vec<usize> {
        self.family_sets(ipv6).iter().map(BTreeSet::len).collect()
    }
}

/// Identifier grouping in id space: the output of
/// [`group_observations_compact`].
///
/// Alias sets are [`CompactAliasSet`]s over a campaign's [`AddrInterner`];
/// addresses are resolved only at the report boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactGrouping {
    /// Non-singleton alias sets in canonical order (ascending by smallest
    /// member address, larger sets first on ties).
    pub sets: Vec<CompactAliasSet>,
    /// Every identified address (any set size), as sorted distinct ids —
    /// the id-space equivalent of `AliasSetCollection::all_addresses`.
    pub testable: Vec<AddrId>,
}

impl CompactGrouping {
    /// Resolve the testable ids back to addresses (report boundary).
    // lint:allow(id-space): report boundary — resolves ids for rendering
    pub fn testable_addrs(&self, interner: &AddrInterner) -> BTreeSet<IpAddr> {
        self.testable.iter().map(|&id| interner.addr(id)).collect()
    }
}

/// Group observations by extracted identifier, entirely in id space, with
/// `threads` shard workers.
///
/// Each shard groups its contiguous slice of the observations into maps
/// keyed by a shard-local [`IdentId`](crate::intern::IdentId); the join
/// then reduces in id space —
/// walking every shard's interner in id order and re-interning only each
/// shard's *distinct* identifiers — instead of re-hashing the full
/// identifier material once per observation.  Because shards are contiguous
/// slices reduced in shard order, the grouped output (including member
/// order and identifier numbering) is identical for every thread count.
///
/// # Panics
/// Panics if an observation's address is missing from `interner`; the
/// campaign interner covers every observed address by construction, so this
/// only fires when observations were mutated after the interner was built.
pub fn group_observations_compact(
    observations: &[&ServiceObservation],
    extractor: &IdentifierExtractor,
    interner: &AddrInterner,
    threads: usize,
) -> CompactGrouping {
    group_compact_sharded(observations.len(), threads, interner, |range, emit| {
        for observation in &observations[range.0..range.1] {
            let Some(identifier) = extractor.extract(observation) else {
                continue;
            };
            let addr = interner.get(observation.addr).expect(
                "the interner must cover every observation address; rebuild the campaign \
                 data (CampaignData::from_observations) after mutating observations",
            );
            emit(identifier, addr);
        }
    })
}

/// Group a columnar store view by extracted identifier, entirely in id
/// space, with `threads` shard workers.
///
/// The columnar counterpart of [`group_observations_compact`] — and the
/// cheaper one: the view's [`AddrId`] column already holds each row's
/// interned id (intern-at-scan), so the per-observation work is one payload
/// extraction and one identifier hash, with no address hashing at all.
/// Sharding and the id-space reduce are identical to the slice path, so
/// the grouped output is the same for every thread count and for either
/// entry point over the same rows.
pub fn group_view_compact(
    view: &ObservationView<'_>,
    extractor: &IdentifierExtractor,
    threads: usize,
) -> CompactGrouping {
    group_compact_sharded(
        view.len(),
        threads,
        view.store().interner(),
        |range, emit| {
            for i in range.0..range.1 {
                let Some(identifier) = extractor.extract_payload(view.payload_at(i)) else {
                    continue;
                };
                emit(identifier, view.addr_id_at(i));
            }
        },
    )
}

/// The shared shard/reduce skeleton behind both compact grouping entry
/// points: `scan` walks one half-open row range and emits
/// `(identifier, addr id)` pairs; shards group locally and the join
/// re-interns only each shard's distinct identifiers, in shard order.
fn group_compact_sharded(
    rows: usize,
    threads: usize,
    interner: &AddrInterner,
    scan: impl Fn((usize, usize), &mut dyn FnMut(ProtocolIdentifier, AddrId)) + Sync,
) -> CompactGrouping {
    // Extraction + hashing is CPU-bound with no per-item pacing overhead
    // to amortise, so workers beyond the machine's parallelism only add
    // scheduling noise; the clamp never changes the output (the grouping
    // is shard-count independent).
    let threads = threads.min(alias_exec::available_parallelism());
    let shard_count = if threads <= 1 {
        1
    } else {
        alias_exec::shards_for(threads)
    };
    let shard_ranges = alias_exec::split_even(rows as u64, shard_count);
    let shards: Vec<(IdentInterner, Vec<Vec<AddrId>>)> =
        alias_exec::shard_map(shard_ranges.len(), threads, |shard| {
            let range = &shard_ranges[shard];
            let mut idents = IdentInterner::new();
            let mut groups: Vec<Vec<AddrId>> = Vec::new();
            scan(
                (range.start as usize, range.end as usize),
                &mut |identifier, addr| {
                    let ident = idents.intern(identifier);
                    if ident.index() == groups.len() {
                        groups.push(Vec::new());
                    }
                    groups[ident.index()].push(addr);
                },
            );
            (idents, groups)
        });

    // Id-space reduce, in shard order: re-intern each shard's distinct
    // identifiers once (moved, not cloned) and splice the id-keyed groups
    // together.  A single shard is already grouped — no join at all.
    let single_shard = shards.len() == 1;
    let mut idents = IdentInterner::new();
    let mut groups: Vec<Vec<AddrId>> = Vec::new();
    for (shard_idents, shard_groups) in shards {
        if single_shard {
            groups = shard_groups;
            break;
        }
        for (identifier, members) in shard_idents.into_keys().into_iter().zip(shard_groups) {
            let ident = idents.intern(identifier);
            if ident.index() == groups.len() {
                groups.push(members);
            } else {
                groups[ident.index()].extend(members);
            }
        }
    }

    let mut sets = Vec::new();
    let mut testable: Vec<AddrId> = Vec::new();
    for members in groups {
        let set = CompactAliasSet::from_ids(members);
        testable.extend(set.iter());
        if set.len() >= 2 {
            sets.push(set);
        }
    }
    testable.sort_unstable();
    testable.dedup();
    sort_canonical_compact(&mut sets, interner);
    CompactGrouping { sets, testable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::ExtractionConfig;
    use alias_netsim::SimTime;
    use alias_scan::{DataSource, ServicePayload};
    use alias_wire::ssh::{Banner, HostKey, HostKeyAlgorithm, KexInit, SshObservation};
    use std::net::Ipv4Addr;

    /// An SSH observation for `addr` from a device identified by `key_byte`.
    fn ssh_obs(addr: &str, key_byte: u8, source: DataSource) -> ServiceObservation {
        ServiceObservation {
            addr: addr.parse().unwrap(),
            port: 22,
            source,
            timestamp: SimTime::ZERO,
            asn: Some(100 + key_byte as u32),
            payload: ServicePayload::Ssh(SshObservation {
                banner: Banner::new("OpenSSH_8.9p1", None).unwrap(),
                kex_init: Some(KexInit::typical_openssh()),
                host_key: Some(HostKey::new(HostKeyAlgorithm::Ed25519, vec![key_byte; 32])),
            }),
        }
    }

    fn collection(observations: &[ServiceObservation]) -> AliasSetCollection {
        let extractor = IdentifierExtractor::new(ExtractionConfig::paper());
        AliasSetCollection::from_observations(observations.iter(), &extractor)
    }

    #[test]
    fn grouping_by_identifier() {
        let obs = vec![
            ssh_obs("10.0.0.1", 1, DataSource::Active),
            ssh_obs("10.0.0.2", 1, DataSource::Active),
            ssh_obs("10.0.0.3", 1, DataSource::Active),
            ssh_obs("10.1.0.1", 2, DataSource::Active),
            ssh_obs("10.2.0.1", 3, DataSource::Active),
            ssh_obs("10.2.0.2", 3, DataSource::Active),
        ];
        let collection = collection(&obs);
        assert_eq!(collection.sets().len(), 3);
        let non_singleton = collection.non_singleton_sets();
        assert_eq!(non_singleton.len(), 2);
        // Largest set first.
        assert_eq!(collection.sets()[0].len(), 3);
        assert_eq!(collection.covered_addresses(false), 5);
        assert_eq!(collection.set_sizes(false), vec![3, 2]);
        assert_eq!(collection.asn("10.0.0.1".parse().unwrap()), Some(101));
    }

    #[test]
    fn streamed_and_collected_grouping_are_identical() {
        let obs = vec![
            ssh_obs("10.0.0.1", 1, DataSource::Active),
            ssh_obs("10.0.0.2", 1, DataSource::Censys),
            ssh_obs("10.1.0.1", 2, DataSource::Active),
            ssh_obs("2001:db8::1", 2, DataSource::Active),
        ];
        let extractor = IdentifierExtractor::new(ExtractionConfig::paper());
        let pulled = AliasSetCollection::from_observations(obs.iter(), &extractor);
        let mut builder = AliasSetBuilder::new(extractor);
        for o in &obs {
            builder.push(o);
        }
        assert_eq!(builder.finish(), pulled);
    }

    #[test]
    fn duplicate_observations_collapse() {
        // The same address observed by the active scan and by Censys (union
        // of data sources) must not inflate the set.
        let obs = vec![
            ssh_obs("10.0.0.1", 1, DataSource::Active),
            ssh_obs("10.0.0.1", 1, DataSource::Censys),
            ssh_obs("10.0.0.2", 1, DataSource::Censys),
        ];
        let collection = collection(&obs);
        assert_eq!(collection.sets().len(), 1);
        assert_eq!(collection.sets()[0].len(), 2);
    }

    #[test]
    fn family_projection_drops_degenerate_sets() {
        let obs = vec![
            ssh_obs("10.0.0.1", 1, DataSource::Active),
            ssh_obs("2001:db8::1", 1, DataSource::Active),
            ssh_obs("10.0.0.9", 2, DataSource::Active),
            ssh_obs("10.0.0.10", 2, DataSource::Active),
        ];
        let collection = collection(&obs);
        // Device 1 is dual-stack but has only one address per family: it is
        // not an alias set within either family.
        assert_eq!(collection.ipv4_sets().len(), 1);
        assert!(collection.ipv6_sets().is_empty());
        // It still counts as two addresses overall.
        assert_eq!(collection.all_addresses().len(), 4);
    }

    #[test]
    fn singleton_only_input_produces_no_alias_sets() {
        let obs = vec![
            ssh_obs("10.0.0.1", 1, DataSource::Active),
            ssh_obs("10.0.0.2", 2, DataSource::Active),
        ];
        let collection = collection(&obs);
        assert!(collection.non_singleton_sets().is_empty());
        assert_eq!(collection.sets().len(), 2);
        assert_eq!(collection.covered_addresses(false), 0);
    }

    #[test]
    fn compact_grouping_matches_the_collection_path_for_every_thread_count() {
        // Interleave duplicates, multiple devices and both families so
        // dedup, non-singleton filtering and canonical ordering all engage.
        let obs = [
            ssh_obs("10.0.0.3", 1, DataSource::Active),
            ssh_obs("10.0.0.1", 1, DataSource::Active),
            ssh_obs("10.0.0.1", 1, DataSource::Censys),
            ssh_obs("10.2.0.1", 3, DataSource::Active),
            ssh_obs("10.1.0.9", 2, DataSource::Active),
            ssh_obs("2001:db8::1", 2, DataSource::Active),
            ssh_obs("10.2.0.2", 3, DataSource::Active),
            ssh_obs("10.9.0.1", 4, DataSource::Active),
        ];
        let extractor = IdentifierExtractor::new(ExtractionConfig::paper());
        let refs: Vec<&ServiceObservation> = obs.iter().collect();
        let interner = AddrInterner::from_addrs(obs.iter().map(|o| o.addr));
        let legacy = AliasSetCollection::from_observations(obs.iter(), &extractor);
        let legacy_sets: Vec<_> = {
            let mut sets: Vec<_> = legacy
                .non_singleton_sets()
                .into_iter()
                .map(|s| s.addrs.clone())
                .collect();
            sets.sort_by(|a, b| a.iter().next().cmp(&b.iter().next()));
            sets
        };
        let serial = group_observations_compact(&refs, &extractor, &interner, 1);
        for threads in [1usize, 2, 7] {
            let grouped = group_observations_compact(&refs, &extractor, &interner, threads);
            assert_eq!(grouped, serial, "threads={threads}");
            let resolved: Vec<_> = grouped
                .sets
                .iter()
                .map(|s| s.to_addr_set(&interner))
                .collect();
            assert_eq!(resolved, legacy_sets, "threads={threads}");
            assert_eq!(grouped.testable_addrs(&interner), legacy.all_addresses());
        }
    }

    #[test]
    fn view_grouping_matches_the_slice_path_for_every_thread_count() {
        // The columnar entry points (store view in, ids straight from the
        // AddrId column) must agree with the row-slice path — sets,
        // testable ids and the memoisable collection alike.
        let obs = [
            ssh_obs("10.0.0.3", 1, DataSource::Active),
            ssh_obs("10.0.0.1", 1, DataSource::Active),
            ssh_obs("10.0.0.1", 1, DataSource::Censys),
            ssh_obs("10.2.0.1", 3, DataSource::Active),
            ssh_obs("10.1.0.9", 2, DataSource::Active),
            ssh_obs("2001:db8::1", 2, DataSource::Active),
            ssh_obs("10.2.0.2", 3, DataSource::Active),
            ssh_obs("10.9.0.1", 4, DataSource::Active),
        ];
        let extractor = IdentifierExtractor::new(ExtractionConfig::paper());
        let store = alias_scan::ObservationStore::from_observations(obs.to_vec());
        let view = store.select(None, None);
        let refs: Vec<&ServiceObservation> = obs.iter().collect();
        let from_slices = group_observations_compact(&refs, &extractor, store.interner(), 1);
        for threads in [1usize, 2, 7] {
            let from_view = group_view_compact(&view, &extractor, threads);
            assert_eq!(from_view, from_slices, "threads={threads}");
        }
        assert_eq!(
            AliasSetCollection::from_view(&view, &extractor),
            AliasSetCollection::from_observations(obs.iter(), &extractor)
        );
        // A filtered view groups exactly the filtered rows.
        let active = store.select(None, Some(alias_scan::SourceTag::Active));
        assert_eq!(
            AliasSetCollection::from_view(&active, &extractor),
            AliasSetCollection::from_observations(
                obs.iter().filter(|o| o.source == DataSource::Active),
                &extractor
            )
        );
    }

    #[test]
    fn compact_grouping_of_nothing_is_empty() {
        let extractor = IdentifierExtractor::new(ExtractionConfig::paper());
        let grouped = group_observations_compact(&[], &extractor, &AddrInterner::new(), 4);
        assert!(grouped.sets.is_empty());
        assert!(grouped.testable.is_empty());
    }

    #[test]
    fn alias_set_family_accessors() {
        let obs = vec![
            ssh_obs("10.0.0.1", 1, DataSource::Active),
            ssh_obs("2001:db8::5", 1, DataSource::Active),
        ];
        let collection = collection(&obs);
        let set = &collection.sets()[0];
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.ipv4_addrs().len(), 1);
        assert_eq!(set.ipv6_addrs().len(), 1);
        assert!(set
            .ipv4_addrs()
            .contains(&IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1))));
    }
}
