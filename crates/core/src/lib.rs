//! # alias-core
//!
//! The paper's primary contribution: protocol-centric IP alias resolution
//! and dual-stack inference from application-layer identifiers.
//!
//! The pipeline is:
//!
//! 1. scanners (`alias-scan`, `alias-censys`) produce
//!    [`alias_scan::ServiceObservation`] records;
//! 2. [`identifier`] / [`extract`] turn each observation into a
//!    [`identifier::ProtocolIdentifier`] — for SSH the banner + the
//!    algorithm-preference fingerprint + the host key, for BGP the OPEN
//!    message fields, for SNMPv3 the engine ID;
//! 3. [`alias_set`] groups addresses that share an identifier into alias
//!    sets, and [`dual_stack`] pairs IPv4 with IPv6 addresses sharing an
//!    identifier;
//! 4. [`merge`] combines protocols and data sources (union analysis),
//!    [`validation`] cross-validates techniques against each other the way
//!    the paper's Table 2 does, and [`analysis`] produces the AS-level
//!    views (Tables 5–6, Figures 5–6);
//! 5. [`ecdf`] and [`report`] provide the distribution and formatting
//!    helpers the experiment binaries use to print paper-style tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias_set;
pub mod analysis;
pub mod dataset;
pub mod dual_stack;
pub mod ecdf;
pub mod extract;
pub mod identifier;
pub mod intern;
pub mod merge;
pub mod report;
pub mod union_find;
pub mod validation;

pub use alias_set::{
    group_observations_compact, group_view_compact, AliasSet, AliasSetBuilder, AliasSetCollection,
    CompactGrouping,
};
pub use alias_wire::hex;
pub use dual_stack::DualStackSet;
pub use ecdf::Ecdf;
pub use extract::{ExtractionConfig, IdentifierExtractor};
pub use identifier::{
    BgpIdentifier, BgpIdentifierPolicy, ProtocolIdentifier, SshIdentifier, SshIdentifierPolicy,
};
pub use intern::{AddrId, AddrInterner, CompactAliasSet, IdentId, IdentInterner};
