//! Union analysis: combining alias sets across protocols and data sources.
//!
//! The paper's headline numbers come from consolidating the three protocols:
//! alias sets from SSH, BGP and SNMPv3 are merged whenever they share an
//! address, addresses are classified by how many services they answer, and
//! each merged set is attributed to the protocols able to identify it
//! ("40% can only be identified with SNMPv3 and 60% with SSH or BGP").

use crate::union_find::UnionFind;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::IpAddr;

/// A merged set with the labels (protocols / sources) that contributed to it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergedSet {
    /// Member addresses.
    pub addrs: BTreeSet<IpAddr>,
    /// Labels of every input list that contributed at least one input set.
    pub labels: BTreeSet<String>,
}

impl MergedSet {
    /// Whether only the given label contributed to this set.
    pub fn only_from(&self, label: &str) -> bool {
        self.labels.len() == 1 && self.labels.contains(label)
    }
}

/// Merge labelled collections of sets: sets sharing at least one address end
/// up in the same merged set.
///
/// The output is in canonical order — merged sets sorted by their smallest
/// address — so the serial and [`merge_labeled_sets_parallel`] paths return
/// identical vectors.
pub fn merge_labeled_sets(inputs: &[(&str, Vec<BTreeSet<IpAddr>>)]) -> Vec<MergedSet> {
    // Index all addresses.
    let mut index: HashMap<IpAddr, usize> = HashMap::new();
    for (_, sets) in inputs {
        for set in sets {
            for &addr in set {
                let next = index.len();
                index.entry(addr).or_insert(next);
            }
        }
    }
    let mut uf = UnionFind::new(index.len());
    for (_, sets) in inputs {
        for set in sets {
            let mut iter = set.iter();
            if let Some(first) = iter.next() {
                let first_idx = index[first];
                for addr in iter {
                    uf.union(first_idx, index[addr]);
                }
            }
        }
    }
    // Build merged membership.
    let mut members: BTreeMap<usize, BTreeSet<IpAddr>> = BTreeMap::new();
    for (&addr, &idx) in &index {
        members.entry(uf.find(idx)).or_default().insert(addr);
    }
    // Attribute labels: an input set contributes its label to the merged set
    // containing its members.
    let mut labels: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (label, sets) in inputs {
        for set in sets {
            if let Some(first) = set.iter().next() {
                let root = uf.find(index[first]);
                labels.entry(root).or_default().insert((*label).to_owned());
            }
        }
    }
    sort_canonical(
        members
            .into_iter()
            .map(|(root, addrs)| MergedSet {
                addrs,
                labels: labels.remove(&root).unwrap_or_default(),
            })
            .collect(),
    )
}

/// [`merge_labeled_sets`] with `threads` shard workers.
///
/// The input sets are split into shards; each worker unions its shard into
/// a private [`UnionFind`] forest and reports the forest's spanning edges,
/// which a final boundary pass unions into the global forest.  Membership
/// materialisation (the `BTreeSet` building, the expensive part) is then
/// sharded over the address index using the compressed root table.  Because
/// the merged partition of a set family is unique — independent of union
/// order — and the output is sorted canonically by smallest member address,
/// the result is identical to the serial path for every thread count.
pub fn merge_labeled_sets_parallel(
    inputs: &[(&str, Vec<BTreeSet<IpAddr>>)],
    threads: usize,
) -> Vec<MergedSet> {
    if threads <= 1 {
        return merge_labeled_sets(inputs);
    }
    // Index all addresses (serial: index assignment follows input order).
    let mut index: HashMap<IpAddr, usize> = HashMap::new();
    let mut addr_of: Vec<IpAddr> = Vec::new();
    for (_, sets) in inputs {
        for set in sets {
            for &addr in set {
                index.entry(addr).or_insert_with(|| {
                    addr_of.push(addr);
                    addr_of.len() - 1
                });
            }
        }
    }
    let all_sets: Vec<&BTreeSet<IpAddr>> =
        inputs.iter().flat_map(|(_, sets)| sets.iter()).collect();

    // Per-shard forests over disjoint slices of the input sets.  Each
    // forest is sized to the addresses its shard actually touches (compact
    // local ids), not the whole universe — otherwise the O(shards × n)
    // initialisation would erase the parallel win at scale.
    let set_ranges = alias_exec::split_even(
        all_sets.len() as u64,
        threads * alias_exec::SHARDS_PER_THREAD,
    );
    let shard_edges: Vec<Vec<(usize, usize)>> =
        alias_exec::shard_map(set_ranges.len(), threads, |shard| {
            let range = &set_ranges[shard];
            let shard_sets = &all_sets[range.start as usize..range.end as usize];
            let mut local: HashMap<usize, usize> = HashMap::new();
            let mut forest = UnionFind::new(0);
            let mut local_of = |global: usize, forest: &mut UnionFind| -> usize {
                *local.entry(global).or_insert_with(|| forest.push())
            };
            let mut edges = Vec::new();
            for set in shard_sets {
                let mut iter = set.iter();
                if let Some(first) = iter.next() {
                    let first_global = index[first];
                    let first_local = local_of(first_global, &mut forest);
                    for addr in iter {
                        let other_global = index[addr];
                        let other_local = local_of(other_global, &mut forest);
                        // Only spanning edges survive: unions that are
                        // redundant within the shard are dropped here
                        // instead of burdening the boundary pass.
                        if forest.union(first_local, other_local) {
                            edges.push((first_global, other_global));
                        }
                    }
                }
            }
            edges
        });

    // Boundary pass: union the shard forests' spanning edges.
    let mut uf = UnionFind::new(addr_of.len());
    for edges in shard_edges {
        for (a, b) in edges {
            uf.union(a, b);
        }
    }
    let roots: Vec<usize> = (0..addr_of.len()).map(|idx| uf.find(idx)).collect();

    // Materialise membership, sharded over the address index.
    let addr_ranges = alias_exec::split_even(
        addr_of.len() as u64,
        threads * alias_exec::SHARDS_PER_THREAD,
    );
    let members = alias_exec::shard_reduce(
        addr_ranges.len(),
        threads,
        |shard| {
            let range = &addr_ranges[shard];
            let mut members: BTreeMap<usize, BTreeSet<IpAddr>> = BTreeMap::new();
            for idx in range.start as usize..range.end as usize {
                members.entry(roots[idx]).or_default().insert(addr_of[idx]);
            }
            members
        },
        BTreeMap::<usize, BTreeSet<IpAddr>>::new(),
        |mut acc, part| {
            for (root, addrs) in part {
                acc.entry(root).or_default().extend(addrs);
            }
            acc
        },
    );

    // Attribute labels (one root lookup per input set).
    let mut labels: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (label, sets) in inputs {
        for set in sets {
            if let Some(first) = set.iter().next() {
                let root = roots[index[first]];
                labels.entry(root).or_default().insert((*label).to_owned());
            }
        }
    }
    sort_canonical(
        members
            .into_iter()
            .map(|(root, addrs)| MergedSet {
                addrs,
                labels: labels.remove(&root).unwrap_or_default(),
            })
            .collect(),
    )
}

/// Canonical output order: merged sets sorted by their smallest address.
/// The sets partition the address space, so smallest members are distinct
/// and the order is total — and independent of union order, which is what
/// makes serial and sharded merges comparable byte for byte.
fn sort_canonical(mut merged: Vec<MergedSet>) -> Vec<MergedSet> {
    merged.sort_by(|a, b| a.addrs.iter().next().cmp(&b.addrs.iter().next()));
    merged
}

/// Convenience: merge unlabelled set lists.
pub fn merge_sets(inputs: &[Vec<BTreeSet<IpAddr>>]) -> Vec<BTreeSet<IpAddr>> {
    let labelled: Vec<(&str, Vec<BTreeSet<IpAddr>>)> =
        inputs.iter().map(|sets| ("", sets.clone())).collect();
    merge_labeled_sets(&labelled)
        .into_iter()
        .map(|m| m.addrs)
        .collect()
}

/// How many services each address answers (the 97% / 3% split of §4.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiServiceStats {
    /// Addresses answering exactly one protocol.
    pub single_service: usize,
    /// Addresses answering exactly two protocols.
    pub two_services: usize,
    /// Addresses answering all three protocols.
    pub three_services: usize,
}

impl MultiServiceStats {
    /// Compute the split from per-protocol responsive address sets.
    pub fn compute(per_protocol: &[BTreeSet<IpAddr>]) -> Self {
        let mut counts: HashMap<IpAddr, usize> = HashMap::new();
        for addrs in per_protocol {
            for &addr in addrs {
                *counts.entry(addr).or_insert(0) += 1;
            }
        }
        let mut stats = MultiServiceStats::default();
        for (_, n) in counts {
            match n {
                1 => stats.single_service += 1,
                2 => stats.two_services += 1,
                _ => stats.three_services += 1,
            }
        }
        stats
    }

    /// Total addresses counted.
    pub fn total(&self) -> usize {
        self.single_service + self.two_services + self.three_services
    }

    /// Fraction answering a single service.
    pub fn single_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.single_service as f64 / self.total() as f64
        }
    }
}

/// Attribution of merged sets to the protocols able to identify them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolAttribution {
    /// Merged sets identifiable only via SNMPv3.
    pub snmpv3_only: usize,
    /// Merged sets identifiable via SSH or BGP (possibly also SNMPv3).
    pub ssh_or_bgp: usize,
    /// Total merged sets.
    pub total: usize,
}

impl ProtocolAttribution {
    /// Compute the attribution from labelled merged sets, where the labels
    /// are protocol names (`"ssh"`, `"bgp"`, `"snmpv3"`).
    pub fn compute(merged: &[MergedSet]) -> Self {
        let mut attribution = ProtocolAttribution {
            total: merged.len(),
            ..Default::default()
        };
        for set in merged {
            if set.only_from("snmpv3") {
                attribution.snmpv3_only += 1;
            } else {
                attribution.ssh_or_bgp += 1;
            }
        }
        attribution
    }

    /// Fraction of sets only SNMPv3 can identify.
    pub fn snmpv3_only_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.snmpv3_only as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(addrs: &[&str]) -> BTreeSet<IpAddr> {
        addrs.iter().map(|a| a.parse().unwrap()).collect()
    }

    #[test]
    fn disjoint_sets_stay_separate() {
        let merged = merge_labeled_sets(&[
            ("ssh", vec![set(&["10.0.0.1", "10.0.0.2"])]),
            ("snmpv3", vec![set(&["10.1.0.1", "10.1.0.2"])]),
        ]);
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().any(|m| m.only_from("ssh")));
        assert!(merged.iter().any(|m| m.only_from("snmpv3")));
    }

    #[test]
    fn overlapping_sets_merge_and_carry_both_labels() {
        let merged = merge_labeled_sets(&[
            ("ssh", vec![set(&["10.0.0.1", "10.0.0.2"])]),
            ("bgp", vec![set(&["10.0.0.2", "10.0.0.3"])]),
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].addrs.len(), 3);
        assert_eq!(merged[0].labels.len(), 2);
        assert!(!merged[0].only_from("ssh"));
    }

    #[test]
    fn transitive_merging_through_a_chain() {
        let merged = merge_sets(&[
            vec![set(&["10.0.0.1", "10.0.0.2"])],
            vec![set(&["10.0.0.2", "10.0.0.3"])],
            vec![set(&["10.0.0.3", "10.0.0.4"])],
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].len(), 4);
    }

    #[test]
    fn multi_service_stats_split() {
        let ssh = set(&["10.0.0.1", "10.0.0.2", "10.0.0.3"]);
        let bgp = set(&["10.0.0.3", "10.0.0.4"]);
        let snmp = set(&["10.0.0.3", "10.0.0.4", "10.0.0.5"]);
        let stats = MultiServiceStats::compute(&[ssh, bgp, snmp]);
        assert_eq!(stats.total(), 5);
        assert_eq!(stats.single_service, 3); // .1, .2, .5
        assert_eq!(stats.two_services, 1); // .4
        assert_eq!(stats.three_services, 1); // .3
        assert!((stats.single_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn attribution_counts_snmp_only_sets() {
        let merged = merge_labeled_sets(&[
            ("ssh", vec![set(&["10.0.0.1", "10.0.0.2"])]),
            (
                "snmpv3",
                vec![
                    set(&["10.1.0.1", "10.1.0.2"]),
                    set(&["10.0.0.1", "10.0.0.9"]),
                ],
            ),
        ]);
        let attribution = ProtocolAttribution::compute(&merged);
        assert_eq!(attribution.total, 2);
        assert_eq!(attribution.snmpv3_only, 1);
        assert_eq!(attribution.ssh_or_bgp, 1);
        assert!((attribution.snmpv3_only_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_sets(&[]).is_empty());
        assert!(merge_labeled_sets(&[("ssh", vec![])]).is_empty());
        let stats = MultiServiceStats::compute(&[]);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.single_fraction(), 0.0);
        let attribution = ProtocolAttribution::compute(&[]);
        assert_eq!(attribution.snmpv3_only_fraction(), 0.0);
    }

    #[test]
    fn output_is_sorted_by_smallest_address() {
        let merged = merge_labeled_sets(&[
            ("ssh", vec![set(&["10.9.0.1", "10.9.0.2"])]),
            ("bgp", vec![set(&["10.0.0.5", "10.0.0.6"])]),
            ("snmpv3", vec![set(&["10.4.0.1"])]),
        ]);
        let firsts: Vec<IpAddr> = merged
            .iter()
            .map(|m| *m.addrs.iter().next().unwrap())
            .collect();
        let mut sorted = firsts.clone();
        sorted.sort();
        assert_eq!(firsts, sorted);
    }

    #[test]
    fn parallel_merge_matches_serial_for_every_thread_count() {
        let inputs = vec![
            (
                "ssh",
                vec![
                    set(&["10.0.0.1", "10.0.0.2"]),
                    set(&["10.0.1.1", "10.0.1.2", "10.0.1.3"]),
                    set(&["10.0.2.1"]),
                ],
            ),
            (
                "bgp",
                vec![
                    set(&["10.0.0.2", "10.0.0.3"]),
                    set(&["10.0.3.1", "10.0.3.2"]),
                ],
            ),
            (
                "snmpv3",
                vec![
                    set(&["10.0.1.3", "10.0.3.1"]),
                    set(&["10.0.4.1", "10.0.4.2"]),
                ],
            ),
        ];
        let serial = merge_labeled_sets(&inputs);
        for threads in [1usize, 2, 7] {
            assert_eq!(
                merge_labeled_sets_parallel(&inputs, threads),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_merge_empty_inputs() {
        assert!(merge_labeled_sets_parallel(&[], 4).is_empty());
        assert!(merge_labeled_sets_parallel(&[("ssh", vec![])], 4).is_empty());
    }

    // The paper-scale regression guarantee in miniature: for random
    // labelled set families, the sharded merge is indistinguishable from
    // the serial one at 2 and 7 threads.
    proptest::proptest! {
        #[test]
        fn proptest_parallel_merge_parity(
            families in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(0u16..600, 1..6),
                    0..40,
                ),
                1..4,
            ),
        ) {
            const LABELS: [&str; 4] = ["ssh", "bgp", "snmpv3", "midar"];
            let inputs: Vec<(&str, Vec<BTreeSet<IpAddr>>)> = families
                .iter()
                .enumerate()
                .map(|(i, sets)| {
                    let sets: Vec<BTreeSet<IpAddr>> = sets
                        .iter()
                        .map(|raw| {
                            raw.iter()
                                .map(|&v| {
                                    IpAddr::from([10, 0, (v >> 8) as u8, (v & 0xff) as u8])
                                })
                                .collect()
                        })
                        .collect();
                    (LABELS[i % LABELS.len()], sets)
                })
                .collect();
            let serial = merge_labeled_sets(&inputs);
            for threads in [2usize, 7] {
                proptest::prop_assert_eq!(merge_labeled_sets_parallel(&inputs, threads), serial.clone());
            }
        }
    }
}
