//! Union analysis: combining alias sets across protocols and data sources.
//!
//! The paper's headline numbers come from consolidating the three protocols:
//! alias sets from SSH, BGP and SNMPv3 are merged whenever they share an
//! address, addresses are classified by how many services they answer, and
//! each merged set is attributed to the protocols able to identify it
//! ("40% can only be identified with SNMPv3 and 60% with SSH or BGP").
//!
//! Everything runs in id space: [`merge_labeled_compact`] unions
//! [`CompactAliasSet`]s straight into a forest indexed by [`AddrId`] — no
//! per-merge address→index re-keying, no per-set clones, no ordered-set
//! rebalancing until the final [`MergedSet`]s are materialised.  Callers
//! that start from address sets intern them once against a campaign
//! interner first; the former `BTreeSet<IpAddr>` entry points are gone.

use crate::intern::{AddrId, AddrInterner, CompactAliasSet};
use crate::union_find::UnionFind;
use alias_obs::{DeterminismClass, LazyCounter};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::net::IpAddr;

/// Merged sets produced by labelled merges.  The merged partition is
/// independent of union order and thread count.
static MERGED_SETS: LazyCounter = LazyCounter::new(
    "merge.merged_sets",
    DeterminismClass::Deterministic,
    "sets",
    "merge",
);

/// Member addresses across all produced merged sets.
static MERGED_ADDRS: LazyCounter = LazyCounter::new(
    "merge.merged_addrs",
    DeterminismClass::Deterministic,
    "addrs",
    "merge",
);

/// Unions on the global forest that joined two distinct sets.  Each one
/// shrinks the component count by exactly one, so the total is a pure
/// function of the merged partition (present addresses minus groups) —
/// deterministic even though the sharded path routes spanning edges
/// instead of raw in-set unions.
static EFFECTIVE_UNIONS: LazyCounter = LazyCounter::new(
    "merge.effective_unions",
    DeterminismClass::Deterministic,
    "unions",
    "merge",
);

/// Raw `find` calls on the global forest.  The sharded path screens
/// redundant unions in private per-shard forests, so the count depends on
/// the shard decomposition: timing class.
static UF_FINDS: LazyCounter =
    LazyCounter::new("merge.uf_finds", DeterminismClass::Timing, "ops", "merge");

/// Raw `union` calls on the global forest (effective or not).
static UF_UNIONS: LazyCounter =
    LazyCounter::new("merge.uf_unions", DeterminismClass::Timing, "ops", "merge");

/// Parent links rewritten by path compression on the global forest.
static UF_PATH_COMPRESSIONS: LazyCounter = LazyCounter::new(
    "merge.uf_path_compressions",
    DeterminismClass::Timing,
    "links",
    "merge",
);

/// A merged set with the labels (protocols / sources) that contributed to it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergedSet {
    /// Member addresses.  This is the rendering boundary — merged sets go
    /// straight into reports, so they carry resolved addresses.
    // lint:allow(id-space): report boundary — merged sets are the rendered output
    pub addrs: BTreeSet<IpAddr>,
    /// Labels of every input list that contributed at least one input set.
    pub labels: BTreeSet<String>,
}

impl MergedSet {
    /// Whether only the given label contributed to this set.
    pub fn only_from(&self, label: &str) -> bool {
        self.labels.len() == 1 && self.labels.contains(label)
    }
}

/// Merge labelled collections of [`CompactAliasSet`]s sharing one id space:
/// sets sharing at least one address end up in the same merged set.
///
/// Member ids index straight into the union–find forest, so there is no
/// per-merge re-keying and no input cloning.  With `threads > 1` the union
/// pass shards over the input sets (private forests reporting spanning
/// edges to a boundary pass) and materialisation shards over the merged
/// groups.  The output is in canonical order — merged sets sorted by their
/// smallest address — and identical for every thread count, because the
/// merged partition of a set family is independent of union order.
pub fn merge_labeled_compact(
    inputs: &[(&str, &[CompactAliasSet])],
    interner: &AddrInterner,
    threads: usize,
) -> Vec<MergedSet> {
    // CPU-bound with no per-item pacing to amortise: workers beyond the
    // machine's parallelism only add scheduling overhead, and the clamp
    // never changes the output (the merged partition is thread-count
    // independent).
    let threads = threads.min(alias_exec::available_parallelism());
    let universe = interner.len();
    // Mark the addresses that actually occur in an input set: the interner
    // may cover a whole campaign while the sets span only part of it.
    let mut present = vec![false; universe];
    for (_, sets) in inputs {
        for set in *sets {
            for id in set.iter() {
                present[id.index()] = true;
            }
        }
    }

    // Union pass over the forest.  Serial: union within sets directly.
    // Sharded: private per-shard forests with compact local ids report
    // their spanning edges, which a serial boundary pass unions — redundant
    // in-shard unions never reach the global forest.
    let mut uf = UnionFind::new(universe);
    if threads <= 1 {
        for (_, sets) in inputs {
            for set in *sets {
                if let Some((&first, rest)) = set.ids().split_first() {
                    for &other in rest {
                        uf.union(first.index(), other.index());
                    }
                }
            }
        }
    } else {
        let all_sets: Vec<&CompactAliasSet> =
            inputs.iter().flat_map(|(_, sets)| sets.iter()).collect();
        let set_ranges =
            alias_exec::split_even(all_sets.len() as u64, alias_exec::shards_for(threads));
        let shard_edges: Vec<Vec<(AddrId, AddrId)>> =
            alias_exec::shard_map(set_ranges.len(), threads, |shard| {
                let range = &set_ranges[shard];
                let mut local: HashMap<AddrId, usize> = HashMap::new();
                let mut forest = UnionFind::new(0);
                let mut local_of = |global: AddrId, forest: &mut UnionFind| -> usize {
                    *local.entry(global).or_insert_with(|| forest.push())
                };
                let mut edges = Vec::new();
                for set in &all_sets[range.start as usize..range.end as usize] {
                    if let Some((&first, rest)) = set.ids().split_first() {
                        let first_local = local_of(first, &mut forest);
                        for &other in rest {
                            let other_local = local_of(other, &mut forest);
                            if forest.union(first_local, other_local) {
                                edges.push((first, other));
                            }
                        }
                    }
                }
                edges
            });
        for edges in shard_edges {
            for (a, b) in edges {
                uf.union(a.index(), b.index());
            }
        }
    }

    // Bucket the present addresses by merged group.  Groups are numbered by
    // first member in id order — a thread-independent keying, unlike the
    // forest's internal representatives.
    let mut slot_of_root = vec![usize::MAX; universe];
    let mut groups: Vec<Vec<AddrId>> = Vec::new();
    for (index, _) in present.iter().enumerate().filter(|(_, &p)| p) {
        let root = uf.find(index);
        let slot = if slot_of_root[root] == usize::MAX {
            slot_of_root[root] = groups.len();
            groups.push(Vec::new());
            groups.len() - 1
        } else {
            slot_of_root[root]
        };
        groups[slot].push(AddrId(index as u32));
    }

    // Attribute labels: an input set contributes its label to the merged
    // group containing its members (one find per input set).
    let mut labels: Vec<BTreeSet<String>> = vec![BTreeSet::new(); groups.len()];
    for (label, sets) in inputs {
        for set in *sets {
            if let Some(&first) = set.ids().first() {
                let slot = slot_of_root[uf.find(first.index())];
                labels[slot].insert((*label).to_owned());
            }
        }
    }

    // Materialise the merged sets at the address boundary, sharded over the
    // groups (the ordered-set building is the expensive part).  Both tables
    // are frozen first: the shards below share them read-only.
    let groups = &groups;
    let labels = &labels;
    let group_ranges = alias_exec::split_even(
        groups.len() as u64,
        if threads <= 1 {
            1
        } else {
            alias_exec::shards_for(threads)
        },
    );
    let mut merged: Vec<MergedSet> = alias_exec::shard_reduce(
        group_ranges.len(),
        threads,
        |shard| {
            let range = &group_ranges[shard];
            (range.start as usize..range.end as usize)
                .map(|slot| MergedSet {
                    addrs: groups[slot].iter().map(|&id| interner.addr(id)).collect(),
                    labels: labels[slot].clone(),
                })
                .collect::<Vec<_>>()
        },
        Vec::with_capacity(groups.len()),
        |mut acc, part| {
            acc.extend(part);
            acc
        },
    );
    sort_canonical(&mut merged);

    // Flush the forest tallies from this serial tail — raw op counts as
    // timing metrics, the partition-derived ones as deterministic.
    let stats = uf.stats();
    UF_FINDS.add(stats.finds);
    UF_UNIONS.add(stats.unions);
    UF_PATH_COMPRESSIONS.add(stats.path_compressions);
    EFFECTIVE_UNIONS.add(stats.effective_unions);
    MERGED_SETS.add(merged.len() as u64);
    MERGED_ADDRS.add(merged.iter().map(|m| m.addrs.len() as u64).sum());

    merged
}

/// Canonical output order: merged sets sorted by their smallest address.
/// The sets partition the address space, so smallest members are distinct
/// and the order is total — and independent of union order, which is what
/// makes serial and sharded merges comparable byte for byte.
fn sort_canonical(merged: &mut [MergedSet]) {
    merged.sort_by(|a, b| a.addrs.iter().next().cmp(&b.addrs.iter().next()));
}

/// How many services each address answers (the 97% / 3% split of §4.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiServiceStats {
    /// Addresses answering exactly one protocol.
    pub single_service: usize,
    /// Addresses answering exactly two protocols.
    pub two_services: usize,
    /// Addresses answering all three protocols.
    pub three_services: usize,
}

impl MultiServiceStats {
    /// Compute the split from per-protocol responsive id lists sharing one
    /// interner of `universe` ids.  Each inner list must hold *distinct*
    /// ids (one per responsive address, as a responsive-set naturally is);
    /// order does not matter.
    pub fn compute(per_protocol: &[Vec<AddrId>], universe: usize) -> Self {
        let mut counts = vec![0u8; universe];
        for ids in per_protocol {
            for id in ids {
                counts[id.index()] += 1;
            }
        }
        let mut stats = MultiServiceStats::default();
        for &n in &counts {
            match n {
                0 => {}
                1 => stats.single_service += 1,
                2 => stats.two_services += 1,
                _ => stats.three_services += 1,
            }
        }
        stats
    }

    /// Total addresses counted.
    pub fn total(&self) -> usize {
        self.single_service + self.two_services + self.three_services
    }

    /// Fraction answering a single service.
    pub fn single_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.single_service as f64 / self.total() as f64
        }
    }
}

/// Attribution of merged sets to the protocols able to identify them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolAttribution {
    /// Merged sets identifiable only via SNMPv3.
    pub snmpv3_only: usize,
    /// Merged sets identifiable via SSH or BGP (possibly also SNMPv3).
    pub ssh_or_bgp: usize,
    /// Total merged sets.
    pub total: usize,
}

impl ProtocolAttribution {
    /// Compute the attribution from labelled merged sets, where the labels
    /// are protocol names (`"ssh"`, `"bgp"`, `"snmpv3"`).
    pub fn compute(merged: &[MergedSet]) -> Self {
        let mut attribution = ProtocolAttribution {
            total: merged.len(),
            ..Default::default()
        };
        for set in merged {
            if set.only_from("snmpv3") {
                attribution.snmpv3_only += 1;
            } else {
                attribution.ssh_or_bgp += 1;
            }
        }
        attribution
    }

    /// Fraction of sets only SNMPv3 can identify.
    pub fn snmpv3_only_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.snmpv3_only as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Intern one dotted-quad family into `interner` as compact sets.
    fn family(sets: &[&[&str]], interner: &mut AddrInterner) -> Vec<CompactAliasSet> {
        sets.iter()
            .map(|addrs| {
                CompactAliasSet::from_ids(
                    addrs
                        .iter()
                        .map(|a| interner.intern(a.parse().unwrap()))
                        .collect(),
                )
            })
            .collect()
    }

    /// Serial labelled merge over freshly interned families.
    fn merge(inputs: &[(&str, &[&[&str]])]) -> Vec<MergedSet> {
        let mut interner = AddrInterner::new();
        let compact: Vec<(&str, Vec<CompactAliasSet>)> = inputs
            .iter()
            .map(|(label, sets)| (*label, family(sets, &mut interner)))
            .collect();
        let borrowed: Vec<(&str, &[CompactAliasSet])> = compact
            .iter()
            .map(|(label, sets)| (*label, sets.as_slice()))
            .collect();
        merge_labeled_compact(&borrowed, &interner, 1)
    }

    #[test]
    fn disjoint_sets_stay_separate() {
        let merged = merge(&[
            ("ssh", &[&["10.0.0.1", "10.0.0.2"]]),
            ("snmpv3", &[&["10.1.0.1", "10.1.0.2"]]),
        ]);
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().any(|m| m.only_from("ssh")));
        assert!(merged.iter().any(|m| m.only_from("snmpv3")));
    }

    #[test]
    fn overlapping_sets_merge_and_carry_both_labels() {
        let merged = merge(&[
            ("ssh", &[&["10.0.0.1", "10.0.0.2"]]),
            ("bgp", &[&["10.0.0.2", "10.0.0.3"]]),
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].addrs.len(), 3);
        assert_eq!(merged[0].labels.len(), 2);
        assert!(!merged[0].only_from("ssh"));
    }

    #[test]
    fn transitive_merging_through_a_chain() {
        let merged = merge(&[
            ("a", &[&["10.0.0.1", "10.0.0.2"]]),
            ("b", &[&["10.0.0.2", "10.0.0.3"]]),
            ("c", &[&["10.0.0.3", "10.0.0.4"]]),
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].addrs.len(), 4);
    }

    #[test]
    fn multi_service_stats_split() {
        // Five addresses 0‥=4: three SSH-only, one on two services, one on
        // all three — mirrors the dotted-quad version this replaced.
        let ssh = vec![AddrId(0), AddrId(1), AddrId(2)];
        let bgp = vec![AddrId(2), AddrId(3)];
        let snmp = vec![AddrId(2), AddrId(3), AddrId(4)];
        let stats = MultiServiceStats::compute(&[ssh, bgp, snmp], 5);
        assert_eq!(stats.total(), 5);
        assert_eq!(stats.single_service, 3); // 0, 1, 4
        assert_eq!(stats.two_services, 1); // 3
        assert_eq!(stats.three_services, 1); // 2
        assert!((stats.single_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn attribution_counts_snmp_only_sets() {
        let merged = merge(&[
            ("ssh", &[&["10.0.0.1", "10.0.0.2"]]),
            (
                "snmpv3",
                &[&["10.1.0.1", "10.1.0.2"], &["10.0.0.1", "10.0.0.9"]],
            ),
        ]);
        let attribution = ProtocolAttribution::compute(&merged);
        assert_eq!(attribution.total, 2);
        assert_eq!(attribution.snmpv3_only, 1);
        assert_eq!(attribution.ssh_or_bgp, 1);
        assert!((attribution.snmpv3_only_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge(&[]).is_empty());
        assert!(merge(&[("ssh", &[])]).is_empty());
        let stats = MultiServiceStats::compute(&[], 0);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.single_fraction(), 0.0);
        let attribution = ProtocolAttribution::compute(&[]);
        assert_eq!(attribution.snmpv3_only_fraction(), 0.0);
    }

    #[test]
    fn interner_may_cover_more_ids_than_the_sets() {
        // A campaign interner spans addresses the input sets never mention;
        // absent ids must not materialise as empty merged sets or skew the
        // service histogram.
        let mut interner = AddrInterner::new();
        let sets = family(&[&["10.0.0.1", "10.0.0.2"]], &mut interner);
        interner.intern("10.9.9.9".parse().unwrap());
        let merged = merge_labeled_compact(&[("ssh", &sets)], &interner, 1);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].addrs.len(), 2);
        let stats = MultiServiceStats::compute(&[vec![AddrId(0), AddrId(1)]], interner.len());
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn output_is_sorted_by_smallest_address() {
        let merged = merge(&[
            ("ssh", &[&["10.9.0.1", "10.9.0.2"]]),
            ("bgp", &[&["10.0.0.5", "10.0.0.6"]]),
            ("snmpv3", &[&["10.4.0.1"]]),
        ]);
        let firsts: Vec<IpAddr> = merged
            .iter()
            .map(|m| *m.addrs.iter().next().unwrap())
            .collect();
        let mut sorted = firsts.clone();
        sorted.sort();
        assert_eq!(firsts, sorted);
    }

    #[test]
    fn parallel_merge_matches_serial_for_every_thread_count() {
        let mut interner = AddrInterner::new();
        let ssh = family(
            &[
                &["10.0.0.1", "10.0.0.2"],
                &["10.0.1.1", "10.0.1.2", "10.0.1.3"],
                &["10.0.2.1"],
            ],
            &mut interner,
        );
        let bgp = family(
            &[&["10.0.0.2", "10.0.0.3"], &["10.0.3.1", "10.0.3.2"]],
            &mut interner,
        );
        let snmp = family(
            &[&["10.0.1.3", "10.0.3.1"], &["10.0.4.1", "10.0.4.2"]],
            &mut interner,
        );
        let inputs: Vec<(&str, &[CompactAliasSet])> =
            vec![("ssh", &ssh), ("bgp", &bgp), ("snmpv3", &snmp)];
        let serial = merge_labeled_compact(&inputs, &interner, 1);
        for threads in [2usize, 7] {
            assert_eq!(
                merge_labeled_compact(&inputs, &interner, threads),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_merge_empty_inputs() {
        let interner = AddrInterner::new();
        assert!(merge_labeled_compact(&[], &interner, 4).is_empty());
        assert!(merge_labeled_compact(&[("ssh", &[])], &interner, 4).is_empty());
    }

    // The paper-scale regression guarantee in miniature: for random
    // labelled set families, the sharded merge is indistinguishable from
    // the serial one at 2 and 7 threads.
    proptest::proptest! {
        #[test]
        fn proptest_parallel_merge_parity(
            families in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(0u16..600, 1..6),
                    0..40,
                ),
                1..4,
            ),
        ) {
            const LABELS: [&str; 4] = ["ssh", "bgp", "snmpv3", "midar"];
            let mut interner = AddrInterner::new();
            let compact: Vec<Vec<CompactAliasSet>> = families
                .iter()
                .map(|sets| {
                    sets.iter()
                        .map(|raw| {
                            CompactAliasSet::from_ids(
                                raw.iter()
                                    .map(|&v| {
                                        interner.intern(IpAddr::from([
                                            10,
                                            0,
                                            (v >> 8) as u8,
                                            (v & 0xff) as u8,
                                        ]))
                                    })
                                    .collect(),
                            )
                        })
                        .collect()
                })
                .collect();
            let inputs: Vec<(&str, &[CompactAliasSet])> = compact
                .iter()
                .enumerate()
                .map(|(i, sets)| (LABELS[i % LABELS.len()], sets.as_slice()))
                .collect();
            let serial = merge_labeled_compact(&inputs, &interner, 1);
            for threads in [2usize, 7] {
                proptest::prop_assert_eq!(
                    merge_labeled_compact(&inputs, &interner, threads),
                    serial.clone()
                );
            }
        }
    }
}
