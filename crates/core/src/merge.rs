//! Union analysis: combining alias sets across protocols and data sources.
//!
//! The paper's headline numbers come from consolidating the three protocols:
//! alias sets from SSH, BGP and SNMPv3 are merged whenever they share an
//! address, addresses are classified by how many services they answer, and
//! each merged set is attributed to the protocols able to identify it
//! ("40% can only be identified with SNMPv3 and 60% with SSH or BGP").

use crate::union_find::UnionFind;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::IpAddr;

/// A merged set with the labels (protocols / sources) that contributed to it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergedSet {
    /// Member addresses.
    pub addrs: BTreeSet<IpAddr>,
    /// Labels of every input list that contributed at least one input set.
    pub labels: BTreeSet<String>,
}

impl MergedSet {
    /// Whether only the given label contributed to this set.
    pub fn only_from(&self, label: &str) -> bool {
        self.labels.len() == 1 && self.labels.contains(label)
    }
}

/// Merge labelled collections of sets: sets sharing at least one address end
/// up in the same merged set.
pub fn merge_labeled_sets(inputs: &[(&str, Vec<BTreeSet<IpAddr>>)]) -> Vec<MergedSet> {
    // Index all addresses.
    let mut index: HashMap<IpAddr, usize> = HashMap::new();
    for (_, sets) in inputs {
        for set in sets {
            for &addr in set {
                let next = index.len();
                index.entry(addr).or_insert(next);
            }
        }
    }
    let mut uf = UnionFind::new(index.len());
    for (_, sets) in inputs {
        for set in sets {
            let mut iter = set.iter();
            if let Some(first) = iter.next() {
                let first_idx = index[first];
                for addr in iter {
                    uf.union(first_idx, index[addr]);
                }
            }
        }
    }
    // Build merged membership.
    let mut members: BTreeMap<usize, BTreeSet<IpAddr>> = BTreeMap::new();
    for (&addr, &idx) in &index {
        members.entry(uf.find(idx)).or_default().insert(addr);
    }
    // Attribute labels: an input set contributes its label to the merged set
    // containing its members.
    let mut labels: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (label, sets) in inputs {
        for set in sets {
            if let Some(first) = set.iter().next() {
                let root = uf.find(index[first]);
                labels.entry(root).or_default().insert((*label).to_owned());
            }
        }
    }
    members
        .into_iter()
        .map(|(root, addrs)| MergedSet {
            addrs,
            labels: labels.remove(&root).unwrap_or_default(),
        })
        .collect()
}

/// Convenience: merge unlabelled set lists.
pub fn merge_sets(inputs: &[Vec<BTreeSet<IpAddr>>]) -> Vec<BTreeSet<IpAddr>> {
    let labelled: Vec<(&str, Vec<BTreeSet<IpAddr>>)> =
        inputs.iter().map(|sets| ("", sets.clone())).collect();
    merge_labeled_sets(&labelled)
        .into_iter()
        .map(|m| m.addrs)
        .collect()
}

/// How many services each address answers (the 97% / 3% split of §4.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiServiceStats {
    /// Addresses answering exactly one protocol.
    pub single_service: usize,
    /// Addresses answering exactly two protocols.
    pub two_services: usize,
    /// Addresses answering all three protocols.
    pub three_services: usize,
}

impl MultiServiceStats {
    /// Compute the split from per-protocol responsive address sets.
    pub fn compute(per_protocol: &[BTreeSet<IpAddr>]) -> Self {
        let mut counts: HashMap<IpAddr, usize> = HashMap::new();
        for addrs in per_protocol {
            for &addr in addrs {
                *counts.entry(addr).or_insert(0) += 1;
            }
        }
        let mut stats = MultiServiceStats::default();
        for (_, n) in counts {
            match n {
                1 => stats.single_service += 1,
                2 => stats.two_services += 1,
                _ => stats.three_services += 1,
            }
        }
        stats
    }

    /// Total addresses counted.
    pub fn total(&self) -> usize {
        self.single_service + self.two_services + self.three_services
    }

    /// Fraction answering a single service.
    pub fn single_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.single_service as f64 / self.total() as f64
        }
    }
}

/// Attribution of merged sets to the protocols able to identify them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolAttribution {
    /// Merged sets identifiable only via SNMPv3.
    pub snmpv3_only: usize,
    /// Merged sets identifiable via SSH or BGP (possibly also SNMPv3).
    pub ssh_or_bgp: usize,
    /// Total merged sets.
    pub total: usize,
}

impl ProtocolAttribution {
    /// Compute the attribution from labelled merged sets, where the labels
    /// are protocol names (`"ssh"`, `"bgp"`, `"snmpv3"`).
    pub fn compute(merged: &[MergedSet]) -> Self {
        let mut attribution = ProtocolAttribution {
            total: merged.len(),
            ..Default::default()
        };
        for set in merged {
            if set.only_from("snmpv3") {
                attribution.snmpv3_only += 1;
            } else {
                attribution.ssh_or_bgp += 1;
            }
        }
        attribution
    }

    /// Fraction of sets only SNMPv3 can identify.
    pub fn snmpv3_only_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.snmpv3_only as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(addrs: &[&str]) -> BTreeSet<IpAddr> {
        addrs.iter().map(|a| a.parse().unwrap()).collect()
    }

    #[test]
    fn disjoint_sets_stay_separate() {
        let merged = merge_labeled_sets(&[
            ("ssh", vec![set(&["10.0.0.1", "10.0.0.2"])]),
            ("snmpv3", vec![set(&["10.1.0.1", "10.1.0.2"])]),
        ]);
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().any(|m| m.only_from("ssh")));
        assert!(merged.iter().any(|m| m.only_from("snmpv3")));
    }

    #[test]
    fn overlapping_sets_merge_and_carry_both_labels() {
        let merged = merge_labeled_sets(&[
            ("ssh", vec![set(&["10.0.0.1", "10.0.0.2"])]),
            ("bgp", vec![set(&["10.0.0.2", "10.0.0.3"])]),
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].addrs.len(), 3);
        assert_eq!(merged[0].labels.len(), 2);
        assert!(!merged[0].only_from("ssh"));
    }

    #[test]
    fn transitive_merging_through_a_chain() {
        let merged = merge_sets(&[
            vec![set(&["10.0.0.1", "10.0.0.2"])],
            vec![set(&["10.0.0.2", "10.0.0.3"])],
            vec![set(&["10.0.0.3", "10.0.0.4"])],
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].len(), 4);
    }

    #[test]
    fn multi_service_stats_split() {
        let ssh = set(&["10.0.0.1", "10.0.0.2", "10.0.0.3"]);
        let bgp = set(&["10.0.0.3", "10.0.0.4"]);
        let snmp = set(&["10.0.0.3", "10.0.0.4", "10.0.0.5"]);
        let stats = MultiServiceStats::compute(&[ssh, bgp, snmp]);
        assert_eq!(stats.total(), 5);
        assert_eq!(stats.single_service, 3); // .1, .2, .5
        assert_eq!(stats.two_services, 1); // .4
        assert_eq!(stats.three_services, 1); // .3
        assert!((stats.single_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn attribution_counts_snmp_only_sets() {
        let merged = merge_labeled_sets(&[
            ("ssh", vec![set(&["10.0.0.1", "10.0.0.2"])]),
            (
                "snmpv3",
                vec![
                    set(&["10.1.0.1", "10.1.0.2"]),
                    set(&["10.0.0.1", "10.0.0.9"]),
                ],
            ),
        ]);
        let attribution = ProtocolAttribution::compute(&merged);
        assert_eq!(attribution.total, 2);
        assert_eq!(attribution.snmpv3_only, 1);
        assert_eq!(attribution.ssh_or_bgp, 1);
        assert!((attribution.snmpv3_only_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_sets(&[]).is_empty());
        assert!(merge_labeled_sets(&[("ssh", vec![])]).is_empty());
        let stats = MultiServiceStats::compute(&[]);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.single_fraction(), 0.0);
        let attribution = ProtocolAttribution::compute(&[]);
        assert_eq!(attribution.snmpv3_only_fraction(), 0.0);
    }
}
